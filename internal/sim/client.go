package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"vortex/internal/client"
	"vortex/internal/meta"
	"vortex/internal/schema"
	"vortex/internal/verify"
	"vortex/internal/workload"
)

func eventsSchema() *schema.Schema { return workload.EventsSchema() }
func logSchema() *schema.Schema    { return workload.LogSchema() }

// pendingBatch is an append whose outcome is in doubt: the rows may or
// may not be durable. The client retries it at the same pinned offset;
// WRONG_OFFSET on such a retry means the original attempt landed and
// only the ack was lost — recorded with FirstSeq=-1 for the verifier's
// content-based resolution.
type pendingBatch struct {
	rows   []schema.Row
	hashes []uint32
	off    int64
}

// simClient is one logically concurrent workload client: it owns a
// dedicated stream on the ledger table (the paper's model) and appends
// at pinned offsets so every write is exactly-once by construction.
type simClient struct {
	id      int
	sim     *simulation
	rng     *rand.Rand
	gen     *workload.Gen
	cl      *client.Client
	stream  *client.Stream
	next    int64 // next pinned stream offset
	pending *pendingBatch
	wrote   bool // stream has rows (worth finalizing)
}

func newSimClient(id int, s *simulation, cl *client.Client) *simClient {
	seed := s.cfg.Seed*7907 + int64(id)
	return &simClient{
		id:  id,
		sim: s,
		rng: rand.New(rand.NewSource(seed)),
		gen: workload.NewGen(seed, 50),
		cl:  cl,
	}
}

// step performs one workload operation.
func (c *simClient) step(ctx context.Context) {
	if c.pending != nil {
		c.resolve(ctx)
		return
	}
	if c.stream == nil {
		c.openStream(ctx)
		return
	}
	switch c.rng.Intn(10) {
	case 7, 8:
		c.read(ctx)
	default:
		c.append(ctx)
	}
}

func (c *simClient) openStream(ctx context.Context) {
	st, err := c.cl.CreateStream(ctx, tableLedger, meta.Unbuffered)
	if err != nil {
		c.sim.logf("e%d c%d create-stream err=%s", c.sim.epoch, c.id, errCategory(err))
		return
	}
	c.stream, c.next, c.wrote = st, 0, false
	c.sim.logf("e%d c%d stream open", c.sim.epoch, c.id)
}

func (c *simClient) append(ctx context.Context) {
	n := 1 + c.rng.Intn(3)
	rows := c.gen.EventRows(c.sim.clock.At().Time(), n, 0)
	hashes := make([]uint32, n)
	for i, r := range rows {
		hashes[i] = verify.RowHash(r)
	}
	off := c.next
	_, seq, err := c.stream.AppendTracked(ctx, rows, client.AtOffset(off))
	switch {
	case err == nil:
		c.record(rows, hashes, off, seq)
		c.sim.logf("e%d c%d append n=%d off=%d ok", c.sim.epoch, c.id, n, off)
	case errors.Is(err, client.ErrStreamFinalized):
		// A previous finalize landed despite its error; rotate.
		c.sim.logf("e%d c%d append off=%d err=STREAM_FINALIZED rotate", c.sim.epoch, c.id, off)
		c.stream = nil
	case errors.Is(err, client.ErrWrongOffset):
		// The client library retries internally, so a dropped response
		// surfaces as WRONG_OFFSET even on a first call: we are this
		// stream's only writer and acked prefixes are durable, so a
		// length past our pinned offset means this batch landed and the
		// ack was lost. Record it for content-based resolution; if that
		// reasoning is ever wrong, the verifier reports it as phantoms.
		c.record(rows, hashes, off, -1)
		c.sim.logf("e%d c%d append n=%d off=%d landed (ack lost)", c.sim.epoch, c.id, n, off)
	default:
		// In doubt: the batch may be durable with the ack lost.
		c.pending = &pendingBatch{rows: rows, hashes: hashes, off: off}
		c.sim.logf("e%d c%d append n=%d off=%d err=%s pending", c.sim.epoch, c.id, n, off, errCategory(err))
	}
}

// resolve retries the in-doubt batch at its pinned offset.
func (c *simClient) resolve(ctx context.Context) {
	p := c.pending
	if c.stream == nil {
		return
	}
	_, seq, err := c.stream.AppendTracked(ctx, p.rows, client.AtOffset(p.off))
	switch {
	case err == nil:
		c.record(p.rows, p.hashes, p.off, seq)
		c.pending = nil
		c.sim.logf("e%d c%d resolve off=%d retried", c.sim.epoch, c.id, p.off)
	case errors.Is(err, client.ErrWrongOffset):
		// The stream is already past our offset: the original attempt
		// landed. Record it with an unknown sequence; the verifier
		// resolves it by content.
		c.record(p.rows, p.hashes, p.off, -1)
		c.pending = nil
		c.sim.logf("e%d c%d resolve off=%d landed", c.sim.epoch, c.id, p.off)
	default:
		c.sim.logf("e%d c%d resolve off=%d err=%s still-pending", c.sim.epoch, c.id, p.off, errCategory(err))
	}
}

func (c *simClient) record(rows []schema.Row, hashes []uint32, off, firstSeq int64) {
	c.sim.ledger.Record(verify.AppendRecord{
		Table:     tableLedger,
		Stream:    c.stream.Info().ID,
		Offset:    off,
		RowCount:  int64(len(rows)),
		FirstSeq:  firstSeq,
		RowHashes: hashes,
	})
	c.next = off + int64(len(rows))
	c.wrote = true
	c.sim.res.Appends++
	c.sim.res.Rows += int64(len(rows))
}

// read runs a strictly sequential snapshot scan (assignment by
// assignment) so chaos occurrence accounting stays replayable even with
// the schedule live.
func (c *simClient) read(ctx context.Context) {
	plan, err := c.cl.Plan(ctx, tableLedger, 0)
	if err != nil {
		c.sim.logf("e%d c%d read err=%s", c.sim.epoch, c.id, errCategory(err))
		return
	}
	total := 0
	for _, a := range plan.Assignments {
		rows, err := c.cl.Scan(ctx, plan, a)
		if err != nil {
			c.sim.logf("e%d c%d read err=%s", c.sim.epoch, c.id, errCategory(err))
			return
		}
		total += len(rows)
	}
	c.sim.res.Reads++
	c.sim.logf("e%d c%d read rows=%d", c.sim.epoch, c.id, total)
}

// rotate finalizes the client's stream (making its fragments conversion
// candidates) and opens a fresh one next step. Only safe with no batch
// in doubt — a pending append must stay pinned to its stream.
func (c *simClient) rotate(ctx context.Context) {
	if c.stream == nil || c.pending != nil || !c.wrote {
		return
	}
	if _, err := c.stream.Finalize(ctx); err != nil {
		c.sim.logf("e%d c%d finalize err=%s", c.sim.epoch, c.id, errCategory(err))
		return
	}
	c.sim.logf("e%d c%d finalize off=%d", c.sim.epoch, c.id, c.next)
	c.stream = nil
}

// dmlActor exercises live DML against background maintenance: it
// appends keyed rows to its own table and issues DELETEs through the
// query engine, tracking an exact row-count model. Deletes are
// idempotent (keyed predicates), so an in-doubt delete is retried until
// it succeeds; the model is only compared when nothing is in flight.
type dmlActor struct {
	sim     *simulation
	rng     *rand.Rand
	gen     *workload.Gen
	cl      *client.Client
	stream  *client.Stream
	next    int64
	pending *pendingBatch
	wrote   bool

	model      map[string]int64 // host key → live row count
	total      int64
	pendingDel string // key of an in-doubt DELETE ("" = none)
}

func newDMLActor(s *simulation) *dmlActor {
	seed := s.cfg.Seed*6133 + 17
	copts := client.DefaultOptions()
	copts.Seed = seed
	return &dmlActor{
		sim:   s,
		rng:   rand.New(rand.NewSource(seed)),
		gen:   workload.NewGen(seed, 8), // small key pool → contended deletes
		cl:    s.region.NewClient(copts),
		model: make(map[string]int64),
	}
}

func (d *dmlActor) idle() bool { return d.pending == nil && d.pendingDel == "" }

func (d *dmlActor) modelCount() int64 { return d.total }

func (d *dmlActor) step(ctx context.Context) {
	if !d.idle() {
		d.resolve(ctx)
		return
	}
	if d.stream == nil {
		st, err := d.cl.CreateStream(ctx, tableDML, meta.Unbuffered)
		if err != nil {
			d.sim.logf("e%d dml create-stream err=%s", d.sim.epoch, errCategory(err))
			return
		}
		d.stream, d.next, d.wrote = st, 0, false
		return
	}
	if d.total > 0 && d.rng.Intn(4) == 0 {
		d.delete(ctx)
		return
	}
	d.append(ctx)
}

func (d *dmlActor) append(ctx context.Context) {
	n := 1 + d.rng.Intn(3)
	rows := make([]schema.Row, n)
	for i := range rows {
		rows[i] = d.gen.LogRow(d.sim.clock.At().Time())
	}
	off := d.next
	_, _, err := d.stream.AppendTracked(ctx, rows, client.AtOffset(off))
	switch {
	case err == nil:
		d.applyAppend(rows, off)
		d.sim.logf("e%d dml append n=%d off=%d ok", d.sim.epoch, n, off)
	case errors.Is(err, client.ErrStreamFinalized):
		d.sim.logf("e%d dml append off=%d err=STREAM_FINALIZED rotate", d.sim.epoch, off)
		d.stream = nil
	case errors.Is(err, client.ErrWrongOffset):
		// Same reasoning as the ledger clients: sole writer + durable
		// acked prefix ⇒ the batch landed with its ack lost.
		d.applyAppend(rows, off)
		d.sim.logf("e%d dml append n=%d off=%d landed (ack lost)", d.sim.epoch, n, off)
	default:
		d.pending = &pendingBatch{rows: rows, off: off}
		d.sim.logf("e%d dml append n=%d off=%d err=%s pending", d.sim.epoch, n, off, errCategory(err))
	}
}

func (d *dmlActor) applyAppend(rows []schema.Row, off int64) {
	for _, r := range rows {
		d.model[r.Values[1].AsString()]++ // field 1 is the host key
		d.total++
	}
	d.next = off + int64(len(rows))
	d.wrote = true
	d.sim.res.Appends++
	d.sim.res.Rows += int64(len(rows))
}

func (d *dmlActor) delete(ctx context.Context) {
	// Deterministic key choice: the smallest live key.
	keys := make([]string, 0, len(d.model))
	for k, n := range d.model {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	key := keys[d.rng.Intn(len(keys))]
	d.runDelete(ctx, key)
}

func (d *dmlActor) runDelete(ctx context.Context, key string) {
	res, err := d.sim.eng.Query(ctx, fmt.Sprintf("DELETE FROM %s WHERE host = '%s'", tableDML, key))
	if err != nil {
		// In doubt: the mask may or may not have committed. The keyed
		// predicate makes a retry idempotent; block appends (which could
		// re-add the key) until the delete definitely applied.
		d.pendingDel = key
		d.sim.logf("e%d dml delete key=%s err=%s pending", d.sim.epoch, key, errCategory(err))
		return
	}
	d.total -= d.model[key]
	d.model[key] = 0
	d.pendingDel = ""
	d.sim.res.DMLs++
	d.sim.logf("e%d dml delete key=%s affected=%d", d.sim.epoch, key, res.Stats.RowsAffected)
}

func (d *dmlActor) resolve(ctx context.Context) {
	if d.pending != nil && d.stream != nil {
		p := d.pending
		_, _, err := d.stream.AppendTracked(ctx, p.rows, client.AtOffset(p.off))
		switch {
		case err == nil:
			d.applyAppend(p.rows, p.off)
			d.pending = nil
			d.sim.logf("e%d dml resolve off=%d retried", d.sim.epoch, p.off)
		case errors.Is(err, client.ErrWrongOffset):
			d.applyAppend(p.rows, p.off)
			d.pending = nil
			d.sim.logf("e%d dml resolve off=%d landed", d.sim.epoch, p.off)
		default:
			d.sim.logf("e%d dml resolve off=%d err=%s still-pending", d.sim.epoch, p.off, errCategory(err))
		}
	}
	if d.pendingDel != "" {
		d.runDelete(ctx, d.pendingDel)
	}
}

func (d *dmlActor) rotate(ctx context.Context) {
	if d.stream == nil || d.pending != nil || !d.wrote {
		return
	}
	if _, err := d.stream.Finalize(ctx); err != nil {
		d.sim.logf("e%d dml finalize err=%s", d.sim.epoch, errCategory(err))
		return
	}
	d.sim.logf("e%d dml finalize off=%d", d.sim.epoch, d.next)
	d.stream = nil
}

// storedCount queries COUNT(*) through the engine at the latest
// snapshot.
func (d *dmlActor) storedCount(ctx context.Context) (int64, error) {
	res, err := d.sim.eng.Query(ctx, fmt.Sprintf("SELECT COUNT(*) FROM %s", tableDML))
	if err != nil {
		return 0, err
	}
	return res.Rows()[0][0].AsInt64(), nil
}
