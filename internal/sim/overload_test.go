package sim_test

import (
	"bytes"
	"testing"
	"time"

	"vortex/internal/sim"
)

// TestOverloadProgramSeeds runs the scripted overload→rebalance→recover
// program across several seeds. Each run must (a) actually shed on both
// the creation-budget and byte-rate paths, (b) open at least one Slicer
// double-assignment window and agree across both owners while it is
// open, and (c) finish with every acknowledged append accounted for
// exactly once — shed appends are retryable promises, not losses.
func TestOverloadProgramSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 7}
	dur := 1500 * time.Millisecond
	if testing.Short() {
		seeds = seeds[:3]
		dur = 1 * time.Second
	}
	for _, seed := range seeds {
		res := sim.Run(sim.Config{Seed: seed, Duration: dur, Clients: 4, Program: "overload"})
		if res.Failure != nil {
			t.Errorf("seed %d: %s at epoch %d: %s\nREPRO: %s",
				seed, res.Failure.Invariant, res.Failure.Epoch, res.Failure.Detail, res.Failure.ReproLine)
			continue
		}
		if res.Sheds == 0 {
			t.Errorf("seed %d: no sheds observed — the squeeze tested nothing", seed)
		}
		if res.Windows == 0 {
			t.Errorf("seed %d: no double-assignment window opened", seed)
		}
		if res.Appends == 0 {
			t.Errorf("seed %d: no appends succeeded", seed)
		}
	}
}

// TestOverloadProgramDeterministic pins the overload program to the
// harness's determinism contract: same seed, byte-identical event log.
func TestOverloadProgramDeterministic(t *testing.T) {
	run := func() (string, *sim.Result) {
		var buf bytes.Buffer
		res := sim.Run(sim.Config{Seed: 11, Duration: time.Second, Clients: 3, Program: "overload", Log: &buf})
		return buf.String(), res
	}
	log1, res1 := run()
	log2, res2 := run()
	if res1.Failure != nil {
		t.Fatalf("seed 11 failed: %+v", res1.Failure)
	}
	if log1 != log2 {
		t.Fatalf("overload event logs differ between identical runs:\n--- run1 tail ---\n%s\n--- run2 tail ---\n%s",
			tailLines(log1, 20), tailLines(log2, 20))
	}
	if res1.Appends != res2.Appends || res1.Sheds != res2.Sheds || res1.Windows != res2.Windows {
		t.Fatalf("stats differ: %+v vs %+v", res1, res2)
	}
}

// TestUnknownProgramRejected pins the config error path.
func TestUnknownProgramRejected(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 1, Program: "nope"})
	if res.Failure == nil || res.Failure.Invariant != "config" {
		t.Fatalf("unknown program not rejected: %+v", res.Failure)
	}
}
