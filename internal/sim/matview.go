package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"vortex/internal/client"
	"vortex/internal/matview"
	"vortex/internal/meta"
	"vortex/internal/query"
	"vortex/internal/schema"
	"vortex/internal/truetime"
)

// Continuous-query invariant: a materialized view maintained
// incrementally off the CDC stream must equal its defining query
// recomputed at each refresh's pinned snapshot — every epoch, under the
// run's random chaos program, across WOS→ROS conversion and GC of both
// the base and the view table, and across maintainer destroy/rebuild
// from the durable checkpoint store (exactly-once delta consumption).
//
// The matview actor churns a primary-keyed accounts table with CDC
// upserts and deletes during the workload phase (same pinned-offset
// exactly-once append discipline as the other actors); the verify phase
// refreshes the view and compares it to the recompute, reporting any
// divergence as lost (recompute rows missing from the view) and phantom
// (view rows the recompute lacks) counts. A refresh or read that FAILS
// is an availability event (logged, skipped) — but a failed refresh
// always discards the maintainer and rebuilds it from the checkpoint,
// since partial in-memory application is not resumable.
const (
	tableAccounts  = meta.TableID("sim.accounts")
	tableByRegion  = meta.TableID("sim.byregion")
	mvRebuildEvery = 3 // epochs between maintainer destroy/rebuild rounds
)

const mvViewSQL = `CREATE MATERIALIZED VIEW sim.byregion AS
SELECT region, COUNT(*) AS accounts, SUM(balance) AS balance
FROM sim.accounts GROUP BY region`

func accountsSchema() *schema.Schema {
	return &schema.Schema{
		Fields: []*schema.Field{
			{Name: "accountId", Kind: schema.KindString, Mode: schema.Required},
			{Name: "region", Kind: schema.KindString, Mode: schema.Required},
			{Name: "balance", Kind: schema.KindInt64, Mode: schema.Nullable},
		},
		PrimaryKey: []string{"accountId"},
	}
}

// matviewActor owns the accounts table's CDC churn and the view's
// maintainer. Its append discipline mirrors simClient: pinned offsets,
// WRONG_OFFSET means the batch landed with its ack lost, anything else
// in doubt goes pending for a same-offset retry.
type matviewActor struct {
	sim     *simulation
	rng     *rand.Rand
	cl      *client.Client
	stream  *client.Stream
	next    int64
	pending *pendingBatch
	wrote   bool

	live   map[string]bool // account ids believed live (delete targeting only)
	nextID int64

	def   *matview.Definition
	store *matview.MemStore
	m     *matview.Maintainer
}

func newMatviewActor(s *simulation) *matviewActor {
	seed := s.cfg.Seed*9173 + 29
	copts := client.DefaultOptions()
	copts.Seed = seed
	return &matviewActor{
		sim:   s,
		rng:   rand.New(rand.NewSource(seed)),
		cl:    s.region.NewClient(copts),
		live:  map[string]bool{},
		store: matview.NewMemStore(),
	}
}

// init compiles the view and builds its (initially empty) maintainer;
// called during setup with the chaos schedule paused.
func (a *matviewActor) init(ctx context.Context) error {
	def, err := matview.Compile(mvViewSQL, func(t meta.TableID) (*schema.Schema, error) {
		return a.cl.GetSchema(ctx, t)
	})
	if err != nil {
		return err
	}
	if err := a.cl.CreateTable(ctx, def.View, def.ViewSchema); err != nil {
		return err
	}
	a.def = def
	return a.rebuild()
}

// rebuild discards the maintainer and reconstructs it from the durable
// checkpoint store — the crash/restart path the invariant exercises.
func (a *matviewActor) rebuild() error {
	m, err := matview.NewMaintainer(a.cl, a.def, a.store, 1)
	if err != nil {
		return err
	}
	// Sequential source and sink: the simulation's determinism contract
	// forbids goroutine interleavings that perturb seq allocation.
	m.SinkPartitions = 1
	a.m = m
	return nil
}

// step performs one churn operation (workload phase, chaos live).
func (a *matviewActor) step(ctx context.Context) {
	if a.pending != nil {
		a.resolve(ctx)
		return
	}
	if a.stream == nil {
		st, err := a.cl.CreateStream(ctx, tableAccounts, meta.Unbuffered)
		if err != nil {
			a.sim.logf("e%d mv create-stream err=%s", a.sim.epoch, errCategory(err))
			return
		}
		a.stream, a.next, a.wrote = st, 0, false
		return
	}
	a.append(ctx, a.genRows())
}

// genRows builds one CDC batch: mostly inserts of fresh accounts, a
// slice of re-keys/updates of existing ones, and occasional deletes.
func (a *matviewActor) genRows() []schema.Row {
	keys := make([]string, 0, len(a.live))
	for k := range a.live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := 1 + a.rng.Intn(3)
	rows := make([]schema.Row, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case len(keys) > 0 && a.rng.Intn(6) == 0:
			row := schema.NewRow(
				schema.String(keys[a.rng.Intn(len(keys))]),
				schema.String(""), schema.Null())
			row.Change = schema.ChangeDelete
			rows = append(rows, row)
		case len(keys) > 4 && a.rng.Intn(3) == 0:
			rows = append(rows, a.upsertRow(keys[a.rng.Intn(len(keys))]))
		default:
			a.nextID++
			rows = append(rows, a.upsertRow(fmt.Sprintf("a%06d", a.nextID)))
		}
	}
	return rows
}

func (a *matviewActor) upsertRow(id string) schema.Row {
	row := schema.NewRow(
		schema.String(id),
		schema.String(fmt.Sprintf("R%d", a.rng.Intn(5))),
		schema.Int64(a.rng.Int63n(1000)))
	row.Change = schema.ChangeUpsert
	return row
}

func (a *matviewActor) append(ctx context.Context, rows []schema.Row) {
	off := a.next
	_, err := a.stream.Append(ctx, rows, client.AtOffset(off))
	switch {
	case err == nil:
		a.applied(rows, off)
		a.sim.logf("e%d mv append n=%d off=%d ok", a.sim.epoch, len(rows), off)
	case errors.Is(err, client.ErrStreamFinalized):
		a.sim.logf("e%d mv append off=%d err=STREAM_FINALIZED rotate", a.sim.epoch, off)
		a.stream = nil
	case errors.Is(err, client.ErrWrongOffset):
		// Sole writer + durable acked prefix: the batch landed, ack lost.
		a.applied(rows, off)
		a.sim.logf("e%d mv append n=%d off=%d landed (ack lost)", a.sim.epoch, len(rows), off)
	default:
		a.pending = &pendingBatch{rows: rows, off: off}
		a.sim.logf("e%d mv append n=%d off=%d err=%s pending", a.sim.epoch, len(rows), off, errCategory(err))
	}
}

func (a *matviewActor) applied(rows []schema.Row, off int64) {
	for _, r := range rows {
		id := r.Values[0].AsString()
		if r.Change == schema.ChangeDelete {
			delete(a.live, id)
		} else {
			a.live[id] = true
		}
	}
	a.next = off + int64(len(rows))
	a.wrote = true
	a.sim.res.Appends++
	a.sim.res.Rows += int64(len(rows))
}

// resolve retries the in-doubt batch at its pinned offset.
func (a *matviewActor) resolve(ctx context.Context) {
	p := a.pending
	if p == nil || a.stream == nil {
		return
	}
	_, err := a.stream.Append(ctx, p.rows, client.AtOffset(p.off))
	switch {
	case err == nil:
		a.applied(p.rows, p.off)
		a.pending = nil
		a.sim.logf("e%d mv resolve off=%d retried", a.sim.epoch, p.off)
	case errors.Is(err, client.ErrWrongOffset):
		a.applied(p.rows, p.off)
		a.pending = nil
		a.sim.logf("e%d mv resolve off=%d landed", a.sim.epoch, p.off)
	default:
		a.sim.logf("e%d mv resolve off=%d err=%s still-pending", a.sim.epoch, p.off, errCategory(err))
	}
}

// rotate finalizes the churn stream so the accounts table's fragments
// become conversion candidates, like the other actors.
func (a *matviewActor) rotate(ctx context.Context) {
	if a.stream == nil || a.pending != nil || !a.wrote {
		return
	}
	if _, err := a.stream.Finalize(ctx); err != nil {
		a.sim.logf("e%d mv finalize err=%s", a.sim.epoch, errCategory(err))
		return
	}
	a.sim.logf("e%d mv finalize off=%d", a.sim.epoch, a.next)
	a.stream = nil
}

// checkMatview runs the per-epoch view-parity invariant (verify phase,
// chaos paused). On scheduled epochs the maintainer is first destroyed
// and rebuilt from its checkpoint, so the refresh that follows proves
// the stored offsets resume delta consumption exactly once.
func (s *simulation) checkMatview(ctx context.Context) {
	a := s.mv
	if s.epoch%mvRebuildEvery == 0 {
		if err := a.rebuild(); err != nil {
			s.fail("view-parity", fmt.Sprintf("rebuild from checkpoint: %v", err))
			return
		}
		s.logf("e%d mv rebuild applied=%d", s.epoch, a.m.AppliedTS())
	}
	st, err := a.m.Refresh(ctx)
	if err != nil {
		s.logf("e%d mv refresh unavailable err=%s", s.epoch, errCategory(err))
		if rerr := a.rebuild(); rerr != nil {
			s.fail("view-parity", fmt.Sprintf("rebuild after failed refresh: %v", rerr))
		}
		return
	}
	s.logf("e%d mv refresh events=%d groups=%d upserts=%d deletes=%d",
		s.epoch, st.Events, st.GroupsChanged, st.Upserts, st.Deletes)
	detail, err := s.matviewParity(ctx, st.SnapshotTS)
	switch {
	case err != nil:
		s.logf("e%d mv parity unavailable err=%s", s.epoch, errCategory(err))
	case detail != "":
		s.fail("view-parity", detail)
	default:
		s.logf("e%d mv parity ok", s.epoch)
	}
}

// matviewParity recomputes the defining query at the refresh's pinned
// snapshot and diffs it against the maintained view table. An empty
// detail means parity; a read error means the check is unavailable this
// epoch.
func (s *simulation) matviewParity(ctx context.Context, at truetime.Timestamp) (string, error) {
	want, err := s.eng.QueryAt(ctx, s.mv.def.SelectSQL, at)
	if err != nil {
		return "", err
	}
	got, err := s.eng.Query(ctx, "SELECT region, accounts, balance FROM "+string(tableByRegion))
	if err != nil {
		return "", err
	}
	lost, phantom := multisetDiff(renderResult(want), renderResult(got))
	if len(lost) == 0 && len(phantom) == 0 {
		return "", nil
	}
	return fmt.Sprintf("at=%d lost=%d phantom=%d lostRows=%v phantomRows=%v",
		at, len(lost), len(phantom), sampleRows(lost), sampleRows(phantom)), nil
}

// drainMatview is the post-heal strict check: with every task restarted
// and chaos off, the refresh must succeed (rebuilding from the
// checkpoint between attempts) and the view must equal the recompute —
// no lost rows, no phantoms, through everything the run injected.
func (s *simulation) drainMatview(ctx context.Context) {
	a := s.mv
	var st *matview.RefreshStats
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if a.pending != nil {
			a.resolve(ctx)
		}
		if st, err = a.m.Refresh(ctx); err == nil {
			break
		}
		s.logf("drain mv refresh err=%s", errCategory(err))
		if rerr := a.rebuild(); rerr != nil {
			s.fail("view-parity", fmt.Sprintf("rebuild after failed refresh: %v", rerr))
			return
		}
		s.clock.Advance(10 * time.Millisecond)
	}
	if err != nil {
		s.fail("view-parity", fmt.Sprintf("refresh unresolvable after heal: %s", errCategory(err)))
		return
	}
	detail, err := s.matviewParity(ctx, st.SnapshotTS)
	switch {
	case err != nil:
		s.fail("view-parity", fmt.Sprintf("final parity read failed: %s", errCategory(err)))
	case detail != "":
		s.fail("view-parity", "final "+detail)
	default:
		s.logf("final mv parity ok events=%d", st.Events)
	}
}

// renderResult renders a result set to value-level row strings
// (maintenance allocates fresh storage seqs, so only values compare).
func renderResult(res *query.Result) []string {
	var out []string
	for _, row := range res.Rows() {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

// multisetDiff returns a\b and b\a as multisets.
func multisetDiff(a, b []string) (onlyA, onlyB []string) {
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	for _, s := range b {
		counts[s]--
	}
	for s, n := range counts {
		for ; n > 0; n-- {
			onlyA = append(onlyA, s)
		}
		for ; n < 0; n++ {
			onlyB = append(onlyB, s)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

func sampleRows(rows []string) []string {
	if len(rows) > 3 {
		rows = rows[:3]
	}
	return rows
}
