package sim_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vortex/internal/chaos"
	"vortex/internal/sim"
)

// TestDeterminism is the harness's foundational property: two runs with
// the same seed and config produce byte-identical event logs and the
// same chaos-event log, so any failure is replayable from its seed.
func TestDeterminism(t *testing.T) {
	run := func() (string, *sim.Result) {
		var buf bytes.Buffer
		res := sim.Run(sim.Config{Seed: 7, Duration: 2 * time.Second, Clients: 3, Faults: 6, Log: &buf})
		return buf.String(), res
	}
	log1, res1 := run()
	log2, res2 := run()
	if log1 != log2 {
		t.Fatalf("event logs differ between identical runs:\n--- run1 ---\n%s\n--- run2 ---\n%s", tailLines(log1, 30), tailLines(log2, 30))
	}
	if res1.ChaosLog != res2.ChaosLog {
		t.Fatalf("chaos logs differ:\n%q\n%q", res1.ChaosLog, res2.ChaosLog)
	}
	if res1.Appends != res2.Appends || res1.Rows != res2.Rows || res1.DMLs != res2.DMLs {
		t.Fatalf("stats differ: %+v vs %+v", res1, res2)
	}
	if res1.Failure != nil {
		t.Fatalf("seed 7 run failed: %+v", res1.Failure)
	}
}

// TestSeedsDiffer guards against the workload ignoring its seed: two
// different seeds must not replay the same event log.
func TestSeedsDiffer(t *testing.T) {
	var a, b bytes.Buffer
	sim.Run(sim.Config{Seed: 1, Duration: 1 * time.Second, Clients: 2, Faults: 0, Log: &a})
	sim.Run(sim.Config{Seed: 2, Duration: 1 * time.Second, Clients: 2, Faults: 0, Log: &b})
	if a.String() == b.String() {
		t.Fatal("seeds 1 and 2 produced identical event logs")
	}
}

// TestInjectedBugIsCaughtAndReplayable proves the harness detects a real
// defect: the dup-ledger bug double-records an acked append, which must
// fail the §6.3 exactly-once invariant with a repro line that reproduces
// the same violation when replayed.
func TestInjectedBugIsCaughtAndReplayable(t *testing.T) {
	cfg := sim.Config{Seed: 42, Duration: 1 * time.Second, Clients: 2, Faults: 4, Bug: "dup-ledger", Minimize: true}
	res := sim.Run(cfg)
	if res.Failure == nil {
		t.Fatal("injected dup-ledger bug was not detected")
	}
	if res.Failure.Invariant != "exactly-once" {
		t.Fatalf("invariant = %q, want exactly-once", res.Failure.Invariant)
	}
	if !strings.Contains(res.Failure.ReproLine, "-seed 42") || !strings.Contains(res.Failure.ReproLine, "-bug dup-ledger") {
		t.Fatalf("repro line not self-contained: %s", res.Failure.ReproLine)
	}

	// Replay the minimized schedule: same invariant must trip again.
	replay := cfg
	replay.Specs = res.Failure.Specs
	if replay.Specs == nil {
		replay.Specs = []chaos.Spec{}
	}
	replay.Minimize = false
	res2 := sim.Run(replay)
	if res2.Failure == nil {
		t.Fatalf("replaying minimized schedule %q did not reproduce the failure", chaos.FormatSpecs(res.Failure.Specs))
	}
	if res2.Failure.Invariant != res.Failure.Invariant {
		t.Fatalf("replay tripped %q, original tripped %q", res2.Failure.Invariant, res.Failure.Invariant)
	}
}

// TestMinimizationDropsIrrelevantFaults checks the delta-debugging pass:
// the dup-ledger failure reproduces with no chaos at all, so the
// minimized schedule for it must be empty no matter how many random
// faults the original run carried.
func TestMinimizationDropsIrrelevantFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization re-runs the simulation many times")
	}
	res := sim.Run(sim.Config{Seed: 5, Duration: 1 * time.Second, Clients: 2, Faults: 6, Bug: "dup-ledger", Minimize: true})
	if res.Failure == nil {
		t.Fatal("injected bug not detected")
	}
	if len(res.Failure.Specs) != 0 {
		t.Fatalf("minimized schedule = %q, want empty (failure is chaos-independent)", chaos.FormatSpecs(res.Failure.Specs))
	}
}

// TestSeedSweep runs a handful of seeds end to end; every invariant must
// hold under each seed's random chaos program. Longer sweeps live in the
// vortex-sim -soak mode.
func TestSeedSweep(t *testing.T) {
	seeds := []int64{1, 2, 3}
	dur := 2 * time.Second
	if testing.Short() {
		seeds = seeds[:2]
		dur = 1 * time.Second
	}
	for _, seed := range seeds {
		res := sim.Run(sim.Config{Seed: seed, Duration: dur, Clients: 3, Faults: 6})
		if res.Failure != nil {
			t.Errorf("seed %d: %s at epoch %d: %s\nREPRO: %s",
				seed, res.Failure.Invariant, res.Failure.Epoch, res.Failure.Detail, res.Failure.ReproLine)
		}
	}
}

// TestReplayProgramRoundTrip pins that a run's chaos program survives
// the text round-trip the repro line depends on.
func TestReplayProgramRoundTrip(t *testing.T) {
	res := sim.Run(sim.Config{Seed: 9, Duration: 1 * time.Second, Clients: 2, Faults: 5})
	if res.Failure != nil {
		t.Fatalf("seed 9 failed: %+v", res.Failure)
	}
	text := chaos.FormatSpecs(res.Specs)
	back, err := chaos.ParseSpecs(text)
	if err != nil {
		t.Fatalf("parsing %q: %v", text, err)
	}
	if chaos.FormatSpecs(back) != text {
		t.Fatalf("round trip changed program: %q -> %q", text, chaos.FormatSpecs(back))
	}

	// Replaying the parsed program yields the identical run.
	var a, b bytes.Buffer
	sim.Run(sim.Config{Seed: 9, Duration: 1 * time.Second, Clients: 2, Faults: 5, Log: &a})
	sim.Run(sim.Config{Seed: 9, Duration: 1 * time.Second, Clients: 2, Specs: back, Log: &b})
	if a.String() != b.String() {
		t.Fatal("replaying the formatted chaos program diverged from the original run")
	}
}

func tailLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
