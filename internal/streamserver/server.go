// Package streamserver implements the Vortex data plane (§5.3): a
// server owning a set of Streamlets, appending row batches to Fragment
// log files replicated synchronously to two Colossus clusters (§5.6),
// rotating fragments on size and on write errors, maintaining column
// properties for partition elimination (§7.2), and heartbeating metadata
// deltas and load to the control plane (§5.5).
package streamserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"vortex/internal/blockenc"
	"vortex/internal/bloom"
	"vortex/internal/colossus"
	"vortex/internal/fragment"
	"vortex/internal/meta"
	"vortex/internal/metrics"
	"vortex/internal/rowenc"
	"vortex/internal/rpc"
	"vortex/internal/schema"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

// Router resolves the SMS task responsible for a table (Slicer-backed).
type Router interface {
	SMSFor(table meta.TableID) (string, error)
}

// Chaos is the fault-injection surface the data plane consults
// (satisfied by *chaos.Schedule; wired by internal/core): Inject
// evaluates the append cut-point, and ClusterOut reports whether a
// Colossus cluster is scheduled out — the trigger for falling back to
// single-cluster replication (§5.6).
type Chaos interface {
	Inject(ctx context.Context, point, target string) error
	ClusterOut(cluster string) bool
}

// ChaosPointAppend is this package's cut-point: evaluated at the top of
// every append, before any durable write. The target is the server addr.
const ChaosPointAppend = "streamserver.append"

// Config parameterizes a Stream Server.
type Config struct {
	// Addr is the server's transport address.
	Addr string
	// MaxFragmentBytes rotates fragments when exceeded. The paper sizes
	// fragments "small enough that conversion ... happens frequently,
	// but not so small that too many Fragments are created" (§5.3).
	MaxFragmentBytes int64
	// MaxBlockBytes caps one buffered write (the paper's 2MB, §5.4.4).
	MaxBlockBytes int
	// HeartbeatCoalesce, when positive, suppresses delta heartbeats that
	// would fire within this window of the previous one, so control-plane
	// traffic stays O(servers) under thousands of dirty streams instead
	// of tracking every append. Skipped rounds keep their dirty set; a
	// full heartbeat is never coalesced. Zero disables coalescing.
	HeartbeatCoalesce time.Duration
	// HeartbeatMaxStreamlets caps the streamlet deltas carried by one
	// heartbeat round; the remainder stays dirty for the next round.
	// Bounds heartbeat size under massive fanout. Zero means unlimited.
	HeartbeatMaxStreamlets int
}

// DefaultConfig returns production-like defaults.
func DefaultConfig(addr string) Config {
	return Config{Addr: addr, MaxFragmentBytes: 8 << 20, MaxBlockBytes: 2 << 20}
}

// Server is one Stream Server task.
type Server struct {
	cfg    Config
	region colossus.Store
	clock  truetime.Clock
	sealer *blockenc.Sealer
	keyID  blockenc.KeyID
	router Router
	net    rpc.Transport
	chaos  Chaos

	seqMu   sync.Mutex
	lastSeq truetime.Timestamp

	mu          sync.Mutex
	streamlets  map[meta.StreamletID]*streamlet
	dirty       map[meta.StreamletID]bool
	deletedAcks []meta.FragmentID
	crashed     bool
	quarantine  bool
	// tableBytes accumulates appended bytes per table since the last
	// acknowledged heartbeat; HeartbeatNow reports them to the SMS for
	// byte-rate admission control (rolled back if the send fails).
	tableBytes map[meta.TableID]int64
	// shedUntil holds SMS shed instructions: appends to a listed table
	// are rejected with RESOURCE_EXHAUSTED until the deadline passes.
	shedUntil map[meta.TableID]truetime.Timestamp
	// lastHB is when the previous (non-coalesced) heartbeat round ran.
	lastHB truetime.Timestamp

	// fileDeleteObserver is invoked with the Colossus paths of fragment
	// files this server deletes during GC (§5.4.3); the region uses it
	// to invalidate client read caches.
	fileDeleteObserver func(paths []string)

	bytesAppended  metrics.Counter
	appendOps      metrics.Counter
	degradedWrites metrics.Counter
	shedAppends    metrics.Counter
	hbSent         metrics.Counter
	hbCoalesced    metrics.Counter
}

// streamlet is the server's in-memory truth about one streamlet.
type streamlet struct {
	mu        sync.Mutex
	info      meta.StreamletInfo
	schema    *schema.Schema
	epoch     int64
	fragments []*meta.FragmentInfo
	cur       *fragWriter
	rowCount  int64 // committed rows (local truth)
	// pendingCommit marks that the last data block has no successor yet:
	// the commit record is combined with the next append or written
	// after inactivity (§7.1).
	pendingCommit bool
	closed        bool
	// lastAppend remembers the most recent acknowledged append so a
	// retransmission whose ack was lost (or a hedged duplicate) can be
	// answered with the original response instead of WRONG_OFFSET —
	// exactly-once across response loss (§4.2.2).
	lastAppend *appendMemo
}

// appendMemo is the replay record of one acknowledged append.
type appendMemo struct {
	startOffset int64
	crc         uint32
	resp        wire.AppendResponse
}

// fragWriter is the state of the currently-open fragment.
type fragWriter struct {
	info       *meta.FragmentInfo
	size       int64 // bytes written (identical in both replicas)
	filter     *bloom.Filter
	clusterMin []schema.Value
	clusterMax []schema.Value
	partitions map[int64]bool
}

// New creates a Stream Server and registers its handlers on net.
func New(cfg Config, region colossus.Store, clock truetime.Clock, keyring *blockenc.Keyring, router Router, net rpc.Transport) *Server {
	if cfg.MaxFragmentBytes <= 0 {
		cfg.MaxFragmentBytes = 8 << 20
	}
	if cfg.MaxBlockBytes <= 0 {
		cfg.MaxBlockBytes = 2 << 20
	}
	s := &Server{
		cfg:        cfg,
		region:     region,
		clock:      clock,
		sealer:     blockenc.NewSealer(keyring),
		router:     router,
		net:        net,
		streamlets: make(map[meta.StreamletID]*streamlet),
		dirty:      make(map[meta.StreamletID]bool),
		tableBytes: make(map[meta.TableID]int64),
		shedUntil:  make(map[meta.TableID]truetime.Timestamp),
	}
	srv := rpc.NewServer()
	srv.RegisterUnary(wire.MethodCreateStreamlet, s.handleCreateStreamlet)
	srv.RegisterUnary(wire.MethodAppend, s.handleAppendUnary)
	srv.RegisterStream(wire.MethodAppend, s.handleAppendStream)
	srv.RegisterUnary(wire.MethodFlush, s.handleFlush)
	srv.RegisterUnary(wire.MethodFinalizeStreamlet, s.handleFinalizeStreamlet)
	srv.RegisterUnary(wire.MethodStreamletState, s.handleStreamletState)
	srv.RegisterUnary(wire.MethodWriteCommitRecord, s.handleWriteCommitRecord)
	net.Register(cfg.Addr, srv)
	return s
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.cfg.Addr }

// SetChaos installs the fault-injection schedule (nil injects nothing).
func (s *Server) SetChaos(c Chaos) {
	s.mu.Lock()
	s.chaos = c
	s.mu.Unlock()
}

func (s *Server) chaosSchedule() Chaos {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chaos
}

// Crash simulates a hard crash: the server vanishes from the network and
// loses its in-memory state (its durable truth stays in Colossus).
func (s *Server) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.streamlets = make(map[meta.StreamletID]*streamlet)
	s.dirty = make(map[meta.StreamletID]bool)
	s.tableBytes = make(map[meta.TableID]int64)
	s.shedUntil = make(map[meta.TableID]truetime.Timestamp)
	s.lastHB = 0
	s.mu.Unlock()
	s.net.Deregister(s.cfg.Addr)
}

// SetQuarantine marks the server as draining for maintenance; the SMS
// stops placing new streamlets on quarantined servers (§5.5).
func (s *Server) SetQuarantine(v bool) {
	s.mu.Lock()
	s.quarantine = v
	s.mu.Unlock()
}

// assignTS hands out a strictly increasing TrueTime timestamp range of n
// rows: the batch's first row gets the returned timestamp, row i gets
// +i. Strict monotonicity across batches gives every row of this server
// a unique timestamp usable as its storage sequence number.
func (s *Server) assignTS(n int64) truetime.Timestamp {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	if n < 1 {
		n = 1
	}
	// Reserve the whole [ts, ts+n) range on the clock, not just its
	// first tick: servers sharing one clock (the embedded region, the
	// deterministic simulation) would otherwise hand out overlapping
	// row-sequence ranges whenever the clock advances less than n ns
	// between batches.
	ts := truetime.CommitRange(s.clock, n)
	if ts <= s.lastSeq {
		ts = s.lastSeq + 1
	}
	s.lastSeq = ts + truetime.Timestamp(n) - 1
	return ts
}

func (s *Server) lookup(id meta.StreamletID) (*streamlet, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.streamlets[id]
	return sl, ok
}

func (s *Server) markDirty(id meta.StreamletID) {
	s.mu.Lock()
	s.dirty[id] = true
	s.mu.Unlock()
}

// shedDeadline reports whether appends to the table are currently shed,
// and if so how long the client should wait before retrying. Expired
// instructions are dropped lazily here.
func (s *Server) shedDeadline(table meta.TableID) (time.Duration, bool) {
	s.mu.Lock()
	until, ok := s.shedUntil[table]
	s.mu.Unlock()
	if !ok {
		return 0, false
	}
	now := s.clock.Now().Latest
	if now >= until {
		s.mu.Lock()
		// Re-check: a fresher instruction may have landed meanwhile.
		if cur, ok := s.shedUntil[table]; ok && now >= cur {
			delete(s.shedUntil, table)
		}
		s.mu.Unlock()
		return 0, false
	}
	return until.Sub(now), true
}

// ---- handlers ----

func (s *Server) handleCreateStreamlet(_ context.Context, req any) (any, error) {
	r, ok := req.(*wire.CreateStreamletRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.streamlets[r.Info.ID]; exists {
		return &wire.CreateStreamletResponse{}, nil // idempotent
	}
	info := r.Info
	info.Server = s.cfg.Addr
	s.streamlets[info.ID] = &streamlet{
		info:   info,
		schema: r.Schema,
		epoch:  r.Epoch,
	}
	s.dirty[info.ID] = true
	return &wire.CreateStreamletResponse{}, nil
}

func (s *Server) handleAppendUnary(ctx context.Context, req any) (any, error) {
	r, ok := req.(*wire.AppendRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	return s.append(ctx, r)
}

func (s *Server) handleAppendStream(ctx context.Context, stream rpc.ServerStream) error {
	for {
		m, err := stream.Recv()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		r, ok := m.(*wire.AppendRequest)
		if !ok {
			return fmt.Errorf("streamserver: bad stream message type %T", m)
		}
		resp, err := s.append(ctx, r)
		if err != nil {
			return err
		}
		if err := stream.Send(resp); err != nil {
			return err
		}
	}
}

// append is the core data-plane write path. A non-nil error is a
// transport-level failure (e.g. an injected crash); application
// outcomes travel in AppendResponse.Error.
func (s *Server) append(ctx context.Context, r *wire.AppendRequest) (*wire.AppendResponse, error) {
	// Chaos cut-point before any durable write: a crash here loses the
	// request, never the data (§5.3 rotation handles the rest).
	if c := s.chaosSchedule(); c != nil {
		if err := c.Inject(ctx, ChaosPointAppend, s.cfg.Addr); err != nil {
			return nil, err
		}
	}
	fail := func(code, detail string) (*wire.AppendResponse, error) {
		if detail != "" {
			code = code + ": " + detail
		}
		return &wire.AppendResponse{Error: code}, nil
	}
	sl, ok := s.lookup(r.Streamlet)
	if !ok {
		return fail(wire.ErrCodeUnknown, string(r.Streamlet))
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.closed {
		return fail(wire.ErrCodeStreamletClosed, "")
	}
	// Load shedding (§5.5): the SMS told us this table is over its
	// ingestion quota. A flagged retransmission of the last acknowledged
	// batch still replays its ack — that data is already durable, and
	// shedding the retry would turn response loss into apparent data
	// loss. (The memo's offset is always behind the live stream offset,
	// so this never admits a fresh append.)
	if retryAfter, shedding := s.shedDeadline(sl.info.Table); shedding {
		if m := sl.lastAppend; r.Retry && m != nil && r.ExpectedStreamOffset == m.startOffset && r.CRC == m.crc {
			resp := m.resp
			return &resp, nil
		}
		s.shedAppends.Add(1)
		return &wire.AppendResponse{
			Error:           wire.ErrCodeResourceExhausted + ": table " + string(sl.info.Table) + " over ingestion quota",
			RetryAfterNanos: int64(retryAfter),
		}, nil
	}
	// Schema staleness: the server relays schema changes to clients when
	// they try to append (§5.4.1).
	if r.SchemaVersion < sl.schema.Version {
		return fail(wire.ErrCodeSchemaStale, fmt.Sprintf("server has v%d", sl.schema.Version))
	}
	// End-to-end CRC (§5.4.5).
	if blockenc.Checksum(r.Payload) != r.CRC {
		return fail(wire.ErrCodeBadPayload, "crc mismatch")
	}
	rows, err := rowenc.DecodeRows(r.Payload)
	if err != nil {
		return fail(wire.ErrCodeBadPayload, err.Error())
	}
	// Offset validation (§4.2.2).
	streamOffset := sl.info.StartOffset + sl.rowCount
	if r.ExpectedStreamOffset >= 0 && r.ExpectedStreamOffset != streamOffset {
		// A flagged retransmission of the last acknowledged batch (same
		// offset, same payload CRC) replays the original ack: the first
		// attempt landed but its response was lost, or a hedge raced the
		// primary. Fresh duplicate appends still fail below.
		if m := sl.lastAppend; r.Retry && m != nil && r.ExpectedStreamOffset == m.startOffset && r.CRC == m.crc {
			resp := m.resp
			return &resp, nil
		}
		return fail(wire.ErrCodeWrongOffset, fmt.Sprintf("stream is at %d, request expects %d", streamOffset, r.ExpectedStreamOffset))
	}

	ts := s.assignTS(int64(len(rows)))
	if err := s.writeDataBlock(sl, r.Payload, ts, int64(len(rows))); err != nil {
		if errors.Is(err, colossus.ErrSizeMismatch) {
			// A sentinel (or competing writer) poisoned the log: this
			// server is a zombie for the streamlet and relinquishes (§5.6).
			sl.closed = true
			s.markDirty(sl.info.ID)
			return fail(wire.ErrCodeStreamletClosed, "ownership lost")
		}
		sl.closed = true
		s.markDirty(sl.info.ID)
		return fail(wire.ErrCodeIO, err.Error())
	}
	// Update column properties for pruning (§7.2).
	s.recordProps(sl, rows)
	sl.rowCount += int64(len(rows))
	sl.info.RowCount = sl.rowCount
	sl.pendingCommit = true
	s.markDirty(sl.info.ID)
	s.appendOps.Add(1)
	s.bytesAppended.Add(int64(len(r.Payload)))
	s.mu.Lock()
	s.tableBytes[sl.info.Table] += int64(len(r.Payload))
	s.mu.Unlock()

	// Rotate on size.
	if sl.cur != nil && sl.cur.size >= s.cfg.MaxFragmentBytes {
		s.finalizeCurrentFragment(sl)
	}
	resp := &wire.AppendResponse{StreamOffset: streamOffset, RowCount: int64(len(rows)), Timestamp: ts}
	sl.lastAppend = &appendMemo{startOffset: streamOffset, crc: r.CRC, resp: *resp}
	return resp, nil
}

// writeDataBlock writes one sealed data block (preceded by a pending
// commit record if any) to both replicas, opening and rotating fragments
// as needed. Caller holds sl.mu.
func (s *Server) writeDataBlock(sl *streamlet, payload []byte, ts truetime.Timestamp, nrows int64) error {
	sealed, err := s.sealer.Seal(payload, blockenc.Checksum(payload), s.keyID)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if sl.cur == nil {
			if err := s.openFragment(sl); err != nil {
				lastErr = err
				if errors.Is(err, colossus.ErrSizeMismatch) {
					return err
				}
				continue
			}
		}
		var buf []byte
		if sl.pendingCommit {
			buf = fragment.EncodeBlock(fragment.Block{Kind: fragment.BlockCommit, Timestamp: ts})
		}
		buf = append(buf, fragment.EncodeBlock(fragment.Block{
			Kind:      fragment.BlockData,
			Timestamp: ts,
			StartRow:  sl.rowCount,
			RowCount:  nrows,
			Payload:   sealed,
		})...)
		if err := s.writeBoth(sl, buf); err != nil {
			lastErr = err
			if errors.Is(err, colossus.ErrSizeMismatch) {
				return err
			}
			// Rotate: close the failed fragment at its committed size and
			// retry into a fresh one (§5.3).
			s.abandonCurrentFragment(sl)
			continue
		}
		sl.pendingCommit = false // the data block follows the commit record
		fw := sl.cur
		fw.size += int64(len(buf))
		fw.info.CommittedBytes = fw.size
		fw.info.RowCount += nrows
		if fw.info.MinRecordTS == 0 || ts < fw.info.MinRecordTS {
			fw.info.MinRecordTS = ts
		}
		if end := ts + truetime.Timestamp(nrows-1); end > fw.info.MaxRecordTS {
			fw.info.MaxRecordTS = end
		}
		return nil
	}
	return fmt.Errorf("streamserver: append failed after retries: %w", lastErr)
}

// writeBoth performs the synchronous dual-cluster replicated write:
// identical bytes to both replicas, success only if both succeed (§5.6).
// A streamlet already degraded to single-cluster replication (identical
// cluster entries) writes once; a dual-homed streamlet whose one failed
// replica sits in a scheduled cluster outage degrades in place — after
// the SMS durably records the new replica set — instead of failing the
// append. Caller holds sl.mu.
func (s *Server) writeBoth(sl *streamlet, data []byte) error {
	crc := blockenc.Checksum(data)
	path := sl.cur.info.Path
	expect := sl.cur.size
	clusters := sl.info.Clusters
	if clusters[0] == clusters[1] {
		c := s.region.Blob(clusters[0])
		if c == nil {
			return fmt.Errorf("streamserver: no cluster %q", clusters[0])
		}
		_, err := c.AppendAt(path, expect, data, crc)
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, name := range clusters {
		c := s.region.Blob(name)
		if c == nil {
			errs[i] = fmt.Errorf("streamserver: no cluster %q", name)
			continue
		}
		wg.Add(1)
		go func(i int, c colossus.Blobs) {
			defer wg.Done()
			_, errs[i] = c.AppendAt(path, expect, data, crc)
		}(i, c)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		return nil
	}
	for i := range errs {
		if errs[i] == nil || errs[1-i] != nil {
			continue // not the exactly-one-replica-failed case
		}
		if errors.Is(errs[i], colossus.ErrSizeMismatch) {
			break // ownership loss, not an outage
		}
		chaos := s.chaosSchedule()
		if chaos == nil || !chaos.ClusterOut(clusters[i]) {
			break
		}
		// Degraded single-cluster commit (§5.6): the healthy replica has
		// the bytes; record the fallback durably, then acknowledge.
		if err := s.degradeStreamlet(sl, clusters[1-i]); err != nil {
			break
		}
		s.degradedWrites.Add(1)
		return nil
	}
	if errs[0] != nil {
		return errs[0]
	}
	return errs[1]
}

// degradeStreamlet flips the streamlet (and its open fragment) to
// single-cluster replication on healthy, synchronously recording the
// change at the SMS so reconciliation and readers stop consulting the
// out cluster's stale replica. Earlier, completed fragments stay
// dual-homed — both their replicas are whole. Caller holds sl.mu.
func (s *Server) degradeStreamlet(sl *streamlet, healthy string) error {
	addr, err := s.router.SMSFor(sl.info.Table)
	if err != nil {
		return err
	}
	_, err = s.net.Unary(context.Background(), addr, wire.MethodDegradeStreamlet, &wire.DegradeStreamletRequest{
		Table:     sl.info.Table,
		Stream:    sl.info.Stream,
		Streamlet: sl.info.ID,
		Clusters:  [2]string{healthy, healthy},
	})
	if err != nil {
		return err
	}
	sl.info.Clusters = [2]string{healthy, healthy}
	if sl.cur != nil {
		sl.cur.info.Clusters = sl.info.Clusters
	}
	s.markDirty(sl.info.ID)
	return nil
}

// FragmentPath is the Colossus path of a streamlet's index'th fragment.
func FragmentPath(table meta.TableID, sl meta.StreamletID, index int) string {
	return fmt.Sprintf("wos/%s/%s/f-%d", table, sl, index)
}

// StreamletPrefix is the Colossus path prefix of a streamlet's files.
func StreamletPrefix(table meta.TableID, sl meta.StreamletID) string {
	return fmt.Sprintf("wos/%s/%s/", table, sl)
}

// openFragment creates the next fragment file with a File Map header.
// Caller holds sl.mu.
func (s *Server) openFragment(sl *streamlet) error {
	idx := sl.info.NextFragmentIndex
	var fmap []fragment.FileMapEntry
	for _, f := range sl.fragments {
		fmap = append(fmap, fragment.FileMapEntry{
			Index:         f.Index,
			CommittedSize: f.CommittedBytes,
			StartRow:      f.StartRow,
			RowCount:      f.RowCount,
			MinTS:         f.MinRecordTS,
			MaxTS:         f.MaxRecordTS,
		})
	}
	hdr := fragment.EncodeHeader(fragment.Header{
		StreamletID:   string(sl.info.ID),
		Index:         idx,
		SchemaVersion: sl.schema.Version,
		WriterEpoch:   sl.epoch,
		FileMap:       fmap,
	})
	info := &meta.FragmentInfo{
		ID:            meta.FragmentIDFor(sl.info.ID, idx),
		Streamlet:     sl.info.ID,
		Table:         sl.info.Table,
		Index:         idx,
		Format:        meta.WOS,
		Path:          FragmentPath(sl.info.Table, sl.info.ID, idx),
		Clusters:      sl.info.Clusters,
		StartRow:      sl.rowCount,
		CreationTS:    s.clock.Commit(),
		SchemaVersion: sl.schema.Version,
	}
	fw := &fragWriter{
		info:       info,
		filter:     bloom.New(1<<14, 0.01),
		partitions: make(map[int64]bool),
	}
	sl.cur = fw
	// Burn the index even if the creation write fails: a half-created
	// file may exist in one cluster, and reusing its path would trip the
	// conditional-append guard.
	sl.info.NextFragmentIndex = idx + 1
	if err := s.writeBoth(sl, hdr); err != nil {
		sl.cur = nil
		return err
	}
	fw.size = int64(len(hdr))
	info.CommittedBytes = fw.size
	sl.fragments = append(sl.fragments, info)
	return nil
}

// abandonCurrentFragment closes the current fragment after a write
// failure; its committed prefix remains readable. Caller holds sl.mu.
func (s *Server) abandonCurrentFragment(sl *streamlet) {
	if sl.cur == nil {
		return
	}
	sl.cur.info.Finalized = true
	sl.cur = nil
}

// finalizeCurrentFragment writes the bloom filter and footer, marking
// the fragment finalized; its column properties are then communicated
// to the SMS via heartbeat (§7.2). Caller holds sl.mu.
func (s *Server) finalizeCurrentFragment(sl *streamlet) {
	fw := sl.cur
	if fw == nil {
		return
	}
	suffix := fragment.EncodeFinalization(fragment.Footer{
		BloomOffset:   fw.size,
		CommittedSize: fw.size,
		RowCount:      fw.info.RowCount,
		MinTS:         fw.info.MinRecordTS,
		MaxTS:         fw.info.MaxRecordTS,
	}, fw.filter)
	// Best effort: a failed footer write leaves a valid unfinalized file.
	if err := s.writeBoth(sl, suffix); err == nil {
		fw.size += int64(len(suffix))
	}
	fw.info.Finalized = true
	fw.info.Bloom = fw.filter.Marshal()
	if len(fw.clusterMin) > 0 {
		fw.info.ClusterMin = rowenc.EncodeValues(fw.clusterMin)
		fw.info.ClusterMax = rowenc.EncodeValues(fw.clusterMax)
	}
	for p := range fw.partitions {
		fw.info.PartitionSet = append(fw.info.PartitionSet, p)
	}
	sl.cur = nil
	s.markDirty(sl.info.ID)
}

// recordProps updates the open fragment's column properties from a
// decoded batch. Caller holds sl.mu.
func (s *Server) recordProps(sl *streamlet, rows []schema.Row) {
	fw := sl.cur
	if fw == nil {
		return
	}
	for _, r := range rows {
		if p, ok := sl.schema.PartitionOf(r); ok {
			fw.partitions[p] = true
			fw.filter.AddString(fmt.Sprintf("__part:%d", p))
		}
		ck := sl.schema.ClusterKeyOf(r)
		if len(ck) == 0 {
			continue
		}
		if fw.clusterMin == nil {
			fw.clusterMin = append([]schema.Value(nil), ck...)
			fw.clusterMax = append([]schema.Value(nil), ck...)
		} else {
			if schema.CompareClusterKeys(ck, fw.clusterMin) < 0 {
				fw.clusterMin = append([]schema.Value(nil), ck...)
			}
			if schema.CompareClusterKeys(ck, fw.clusterMax) > 0 {
				fw.clusterMax = append([]schema.Value(nil), ck...)
			}
		}
		for _, v := range ck {
			if !v.IsNull() {
				fw.filter.AddString(v.Key())
			}
		}
	}
}

func (s *Server) handleFlush(_ context.Context, req any) (any, error) {
	r, ok := req.(*wire.FlushRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	sl, found := s.lookup(r.Streamlet)
	if !found {
		return nil, fmt.Errorf("streamserver: %s: unknown streamlet %s", wire.ErrCodeUnknown, r.Streamlet)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.closed {
		return nil, fmt.Errorf("streamserver: %s", wire.ErrCodeStreamletClosed)
	}
	if sl.cur == nil {
		if err := s.openFragment(sl); err != nil {
			return nil, err
		}
	}
	blk := fragment.EncodeBlock(fragment.Block{
		Kind:      fragment.BlockFlush,
		Timestamp: s.clock.Commit(),
		StartRow:  r.StreamOffset,
	})
	if err := s.writeBoth(sl, blk); err != nil {
		return nil, err
	}
	sl.cur.size += int64(len(blk))
	sl.cur.info.CommittedBytes = sl.cur.size
	sl.pendingCommit = false
	s.markDirty(sl.info.ID)
	return &wire.FlushResponse{}, nil
}

func (s *Server) handleWriteCommitRecord(_ context.Context, req any) (any, error) {
	r, ok := req.(*wire.WriteCommitRecordRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	sl, found := s.lookup(r.Streamlet)
	if !found {
		return nil, fmt.Errorf("streamserver: %s: unknown streamlet %s", wire.ErrCodeUnknown, r.Streamlet)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.pendingCommit || sl.cur == nil || sl.closed {
		return &wire.WriteCommitRecordResponse{}, nil
	}
	blk := fragment.EncodeBlock(fragment.Block{Kind: fragment.BlockCommit, Timestamp: s.clock.Commit()})
	if err := s.writeBoth(sl, blk); err != nil {
		return nil, err
	}
	sl.cur.size += int64(len(blk))
	sl.cur.info.CommittedBytes = sl.cur.size
	sl.pendingCommit = false
	return &wire.WriteCommitRecordResponse{}, nil
}

func (s *Server) handleFinalizeStreamlet(_ context.Context, req any) (any, error) {
	r, ok := req.(*wire.FinalizeStreamletRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	sl, found := s.lookup(r.Streamlet)
	if !found {
		return nil, fmt.Errorf("streamserver: %s: unknown streamlet %s", wire.ErrCodeUnknown, r.Streamlet)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.closed {
		if sl.pendingCommit && sl.cur != nil {
			blk := fragment.EncodeBlock(fragment.Block{Kind: fragment.BlockCommit, Timestamp: s.clock.Commit()})
			if err := s.writeBoth(sl, blk); err == nil {
				sl.cur.size += int64(len(blk))
				sl.cur.info.CommittedBytes = sl.cur.size
				sl.pendingCommit = false
			}
		}
		s.finalizeCurrentFragment(sl)
		sl.closed = true
		sl.info.State = meta.StreamletFinalized
		s.markDirty(sl.info.ID)
	}
	return &wire.FinalizeStreamletResponse{RowCount: sl.rowCount, Fragments: copyFragments(sl.fragments)}, nil
}

func (s *Server) handleStreamletState(_ context.Context, req any) (any, error) {
	r, ok := req.(*wire.StreamletStateRequest)
	if !ok {
		return nil, fmt.Errorf("streamserver: bad request type %T", req)
	}
	sl, found := s.lookup(r.Streamlet)
	if !found {
		return nil, fmt.Errorf("streamserver: %s: unknown streamlet %s", wire.ErrCodeUnknown, r.Streamlet)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return &wire.StreamletStateResponse{RowCount: sl.rowCount, Fragments: copyFragments(sl.fragments)}, nil
}

func copyFragments(fs []*meta.FragmentInfo) []meta.FragmentInfo {
	out := make([]meta.FragmentInfo, len(fs))
	for i, f := range fs {
		out[i] = *f
	}
	return out
}

// ---- heartbeat ----

// HeartbeatNow sends one heartbeat per SMS task covering this server's
// dirty streamlets (or all of them when full is true) and applies the
// response. The production system does this on a timer; the simulation's
// region runner calls it periodically and tests call it directly.
func (s *Server) HeartbeatNow(ctx context.Context, full bool) error {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return errors.New("streamserver: crashed")
	}
	// Coalescing: a delta heartbeat inside the window is skipped whole —
	// the dirty set, deletion acks and table-byte counters all stay
	// queued for the next round. The guard only skips when the clock
	// moved forward but less than the window: a clock jump (now far past
	// lastHB) or any non-monotonic reading always sends, so liveness at
	// the SMS can never lapse because of coalescing. Full heartbeats are
	// never coalesced.
	now := s.clock.Now().Latest
	if c := s.cfg.HeartbeatCoalesce; c > 0 && !full {
		if s.lastHB != 0 && now >= s.lastHB && now.Sub(s.lastHB) < c {
			s.hbCoalesced.Add(1)
			s.mu.Unlock()
			return nil
		}
	}
	s.lastHB = now
	var ids []meta.StreamletID
	if full {
		for id := range s.streamlets {
			ids = append(ids, id)
		}
	} else {
		for id := range s.dirty {
			ids = append(ids, id)
		}
	}
	s.dirty = make(map[meta.StreamletID]bool)
	// Bound the deltas one round carries; the remainder stays dirty.
	// Sorted so the cut is deterministic under the simulation.
	if m := s.cfg.HeartbeatMaxStreamlets; m > 0 && len(ids) > m {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids[m:] {
			s.dirty[id] = true
		}
		ids = ids[:m]
	}
	quarantine := s.quarantine
	acks := s.deletedAcks
	s.deletedAcks = nil
	pendingBytes := s.tableBytes
	s.tableBytes = make(map[meta.TableID]int64)
	streamlets := make(map[meta.StreamletID]*streamlet, len(ids))
	for _, id := range ids {
		streamlets[id] = s.streamlets[id]
	}
	s.mu.Unlock()

	// Group by SMS task.
	byTask := make(map[string]*wire.HeartbeatRequest)
	for id, sl := range streamlets {
		sl.mu.Lock()
		hb := wire.StreamletHeartbeat{Info: sl.info, Fragments: copyFragments(sl.fragments)}
		table := sl.info.Table
		sl.mu.Unlock()
		addr, err := s.router.SMSFor(table)
		if err != nil {
			s.markDirty(id)
			continue
		}
		req := byTask[addr]
		if req == nil {
			req = &wire.HeartbeatRequest{
				Server:           s.cfg.Addr,
				Quarantine:       quarantine,
				Throughput:       float64(s.bytesAppended.Value()),
				FullSnapshot:     full,
				DeletedFragments: acks,
			}
			acks = nil // acked through the first task that hears from us
			byTask[addr] = req
		}
		req.Streamlets = append(req.Streamlets, hb)
	}
	// Route accumulated per-table byte counts to each table's owning SMS
	// task so byte-rate admission control sees aggregate throughput —
	// O(tables) entries riding O(servers) heartbeats, never per-stream.
	for table, n := range pendingBytes {
		if n <= 0 {
			continue
		}
		addr, err := s.router.SMSFor(table)
		if err != nil {
			// Re-accumulate for the next round.
			s.mu.Lock()
			s.tableBytes[table] += n
			s.mu.Unlock()
			continue
		}
		req := byTask[addr]
		if req == nil {
			req = &wire.HeartbeatRequest{
				Server:       s.cfg.Addr,
				Quarantine:   quarantine,
				Throughput:   float64(s.bytesAppended.Value()),
				FullSnapshot: full,
			}
			byTask[addr] = req
		}
		if req.TableBytes == nil {
			req.TableBytes = make(map[meta.TableID]int64)
		}
		req.TableBytes[table] += n
	}
	if len(byTask) == 0 {
		// Still report load (and pending deletion acks) so placement and
		// GC stay fresh.
		if addr, err := s.router.SMSFor(""); err == nil {
			byTask[addr] = &wire.HeartbeatRequest{Server: s.cfg.Addr, Quarantine: quarantine, FullSnapshot: full, DeletedFragments: acks}
			acks = nil
		}
	}
	if len(acks) > 0 {
		s.mu.Lock()
		s.deletedAcks = append(s.deletedAcks, acks...)
		s.mu.Unlock()
	}
	var firstErr error
	for addr, req := range byTask {
		resp, err := s.net.Unary(ctx, addr, wire.MethodHeartbeat, req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			for _, hb := range req.Streamlets {
				s.markDirty(hb.Info.ID)
			}
			if len(req.DeletedFragments) > 0 || len(req.TableBytes) > 0 {
				s.mu.Lock()
				s.deletedAcks = append(s.deletedAcks, req.DeletedFragments...)
				// Unacknowledged byte reports roll back so admission
				// control eventually hears about every accepted byte.
				for table, n := range req.TableBytes {
					s.tableBytes[table] += n
				}
				s.mu.Unlock()
			}
			continue
		}
		s.hbSent.Add(1)
		s.applyHeartbeatResponse(resp.(*wire.HeartbeatResponse))
	}
	return firstErr
}

func (s *Server) applyHeartbeatResponse(resp *wire.HeartbeatResponse) {
	// Schema changes propagate to writable streamlets (§5.4.1). The
	// streamlet set is snapshotted first: sl.mu must never be acquired
	// under s.mu, because append handlers hold sl.mu while taking s.mu
	// (markDirty, byte accounting) — the reverse order deadlocks against
	// a concurrent heartbeat.
	if len(resp.Schemas) > 0 {
		s.mu.Lock()
		sls := make([]*streamlet, 0, len(s.streamlets))
		for _, sl := range s.streamlets {
			sls = append(sls, sl)
		}
		s.mu.Unlock()
		for _, sl := range sls {
			sl.mu.Lock()
			if sc, ok := resp.Schemas[sl.info.Table]; ok && sc.Version > sl.schema.Version {
				sl.schema = sc
			}
			sl.mu.Unlock()
		}
	}
	// Garbage collection of converted fragments (§5.4.3): delete the
	// files, then acknowledge in the next heartbeat so the SMS can drop
	// the Spanner records.
	for _, fid := range resp.DeleteFragments {
		s.deleteFragmentFiles(fid)
		s.mu.Lock()
		s.deletedAcks = append(s.deletedAcks, fid)
		s.mu.Unlock()
	}
	// Orphaned streamlets: drop local state (the files are the SMS's
	// problem; it told us it does not know them).
	if len(resp.UnknownStreamlets) > 0 {
		s.mu.Lock()
		for _, id := range resp.UnknownStreamlets {
			delete(s.streamlets, id)
		}
		s.mu.Unlock()
	}
	// Shed instructions: reject the listed tables' appends until the
	// deadline. Instructions extend but never shorten an active shed —
	// two SMS tasks may both report the global bucket exhausted.
	if len(resp.ShedTables) > 0 {
		now := s.clock.Now().Latest
		s.mu.Lock()
		for table, d := range resp.ShedTables {
			if d <= 0 {
				continue
			}
			until := now + truetime.Timestamp(d)
			if until > s.shedUntil[table] {
				s.shedUntil[table] = until
			}
		}
		s.mu.Unlock()
	}
}

// SetFileDeleteObserver installs the GC file-deletion callback.
func (s *Server) SetFileDeleteObserver(fn func(paths []string)) {
	s.mu.Lock()
	s.fileDeleteObserver = fn
	s.mu.Unlock()
}

func (s *Server) deleteFragmentFiles(fid meta.FragmentID) {
	// Fragment ids embed the streamlet id: find the owning streamlet.
	s.mu.Lock()
	var owner *streamlet
	for id, sl := range s.streamlets {
		if strings.HasPrefix(string(fid), string(id)+"/") {
			owner = sl
			break
		}
	}
	obs := s.fileDeleteObserver
	s.mu.Unlock()
	if owner == nil {
		return
	}
	var deleted []string
	owner.mu.Lock()
	kept := owner.fragments[:0]
	for _, f := range owner.fragments {
		if f.ID == fid {
			for _, cn := range f.Clusters {
				if c := s.region.Blob(cn); c != nil {
					_ = c.Delete(f.Path)
				}
			}
			deleted = append(deleted, f.Path)
			continue
		}
		kept = append(kept, f)
	}
	owner.fragments = kept
	owner.mu.Unlock()
	if obs != nil && len(deleted) > 0 {
		obs(deleted)
	}
}

// Stats reports the server's load counters (heartbeats carry them).
type Stats struct {
	AppendOps      int64
	BytesAppended  int64
	DegradedWrites int64
	Streamlets     int
	// ShedAppends counts appends rejected with RESOURCE_EXHAUSTED under
	// an SMS shed instruction (before any durable write).
	ShedAppends int64
	// HeartbeatsSent / HeartbeatsCoalesced count heartbeat rounds that
	// reached an SMS task vs. rounds skipped whole by coalescing.
	HeartbeatsSent      int64
	HeartbeatsCoalesced int64
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.streamlets)
	s.mu.Unlock()
	return Stats{
		AppendOps:           s.appendOps.Value(),
		BytesAppended:       s.bytesAppended.Value(),
		DegradedWrites:      s.degradedWrites.Value(),
		Streamlets:          n,
		ShedAppends:         s.shedAppends.Value(),
		HeartbeatsSent:      s.hbSent.Value(),
		HeartbeatsCoalesced: s.hbCoalesced.Value(),
	}
}
