package streamserver

import (
	"context"
	"strings"
	"testing"
	"time"

	"vortex/internal/blockenc"
	"vortex/internal/colossus"
	"vortex/internal/fragment"
	"vortex/internal/meta"
	"vortex/internal/rowenc"
	"vortex/internal/rpc"
	"vortex/internal/schema"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

type stubRouter struct{ addr string }

func (s stubRouter) SMSFor(meta.TableID) (string, error) { return s.addr, nil }

func testSchema() *schema.Schema {
	return &schema.Schema{
		Fields: []*schema.Field{
			{Name: "k", Kind: schema.KindString, Mode: schema.Required},
			{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
		},
		ClusterBy: []string{"k"},
	}
}

func newServer(t *testing.T, maxFrag int64) (*Server, *colossus.Region, *rpc.Network) {
	t.Helper()
	region := colossus.NewRegion("a", "b")
	net := rpc.NewNetwork(nil)
	cfg := DefaultConfig("ss-1")
	if maxFrag > 0 {
		cfg.MaxFragmentBytes = maxFrag
	}
	srv := New(cfg, region, truetime.Default(), blockenc.NewKeyring(), stubRouter{"sms-0"}, net)
	return srv, region, net
}

func createStreamlet(t *testing.T, net *rpc.Network, id meta.StreamletID) {
	t.Helper()
	_, err := net.Unary(context.Background(), "ss-1", wire.MethodCreateStreamlet, &wire.CreateStreamletRequest{
		Info: meta.StreamletInfo{
			ID: id, Stream: "s-1", Table: "d.t",
			Clusters: [2]string{"a", "b"},
		},
		Schema: testSchema(),
		Epoch:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func appendRows(t *testing.T, net *rpc.Network, id meta.StreamletID, offset int64, n int) *wire.AppendResponse {
	t.Helper()
	rows := make([]schema.Row, n)
	for i := range rows {
		rows[i] = schema.NewRow(schema.String("key"), schema.Int64(int64(i)))
	}
	payload := rowenc.EncodeRows(rows)
	resp, err := net.Unary(context.Background(), "ss-1", wire.MethodAppend, &wire.AppendRequest{
		Streamlet:            id,
		Payload:              payload,
		CRC:                  blockenc.Checksum(payload),
		ExpectedStreamOffset: offset,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.(*wire.AppendResponse)
}

func TestAppendWritesIdenticalReplicas(t *testing.T) {
	_, region, net := newServer(t, 0)
	createStreamlet(t, net, "s-1/sl-0")
	if resp := appendRows(t, net, "s-1/sl-0", -1, 5); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp := appendRows(t, net, "s-1/sl-0", -1, 3); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	path := FragmentPath("d.t", "s-1/sl-0", 0)
	a, err := region.Cluster("a").Read(path, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := region.Cluster("b").Read(path, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("replicas diverge: replication must be physical (§5.6)")
	}
	scan, err := fragment.Scan(a)
	if err != nil {
		t.Fatal(err)
	}
	// Second append carries the first append's piggybacked commit record.
	kinds := []fragment.BlockKind{}
	for _, blk := range scan.Blocks {
		kinds = append(kinds, blk.Kind)
	}
	want := []fragment.BlockKind{fragment.BlockData, fragment.BlockCommit, fragment.BlockData}
	if len(kinds) != len(want) {
		t.Fatalf("blocks = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("block %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestOffsetValidation(t *testing.T) {
	_, _, net := newServer(t, 0)
	createStreamlet(t, net, "s-1/sl-0")
	if resp := appendRows(t, net, "s-1/sl-0", 0, 4); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	// Pipelined next offset must be 4; anything else fails.
	if resp := appendRows(t, net, "s-1/sl-0", 14, 5); !strings.HasPrefix(resp.Error, wire.ErrCodeWrongOffset) {
		t.Fatalf("out-of-order offset: %q", resp.Error)
	}
	if resp := appendRows(t, net, "s-1/sl-0", 4, 5); resp.Error != "" {
		t.Fatal(resp.Error)
	}
}

func TestSchemaStaleness(t *testing.T) {
	_, _, net := newServer(t, 0)
	createStreamlet(t, net, "s-1/sl-0")
	rows := []schema.Row{schema.NewRow(schema.String("k"), schema.Int64(1))}
	payload := rowenc.EncodeRows(rows)
	resp, err := net.Unary(context.Background(), "ss-1", wire.MethodAppend, &wire.AppendRequest{
		Streamlet:            "s-1/sl-0",
		Payload:              payload,
		CRC:                  blockenc.Checksum(payload),
		SchemaVersion:        -1, // older than the server's version 0
		ExpectedStreamOffset: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.(*wire.AppendResponse).Error, wire.ErrCodeSchemaStale) {
		t.Fatalf("stale schema: %q", resp.(*wire.AppendResponse).Error)
	}
}

func TestBadCRCRejected(t *testing.T) {
	_, _, net := newServer(t, 0)
	createStreamlet(t, net, "s-1/sl-0")
	payload := rowenc.EncodeRows([]schema.Row{schema.NewRow(schema.String("k"), schema.Int64(1))})
	resp, _ := net.Unary(context.Background(), "ss-1", wire.MethodAppend, &wire.AppendRequest{
		Streamlet: "s-1/sl-0", Payload: payload, CRC: blockenc.Checksum(payload) + 1, ExpectedStreamOffset: -1,
	})
	if !strings.HasPrefix(resp.(*wire.AppendResponse).Error, wire.ErrCodeBadPayload) {
		t.Fatalf("bad crc: %q", resp.(*wire.AppendResponse).Error)
	}
}

func TestFragmentRotationOnSize(t *testing.T) {
	_, _, net := newServer(t, 512)
	createStreamlet(t, net, "s-1/sl-0")
	for i := 0; i < 10; i++ {
		if resp := appendRows(t, net, "s-1/sl-0", -1, 10); resp.Error != "" {
			t.Fatal(resp.Error)
		}
	}
	resp, err := net.Unary(context.Background(), "ss-1", wire.MethodStreamletState, &wire.StreamletStateRequest{Streamlet: "s-1/sl-0"})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.(*wire.StreamletStateResponse)
	if st.RowCount != 100 {
		t.Fatalf("rows = %d", st.RowCount)
	}
	if len(st.Fragments) < 2 {
		t.Fatalf("fragments = %d; rotation at 512B did not happen", len(st.Fragments))
	}
	finalized := 0
	var starts int64 = -1
	for _, f := range st.Fragments {
		if f.Finalized {
			finalized++
		}
		if f.StartRow <= starts {
			t.Fatalf("fragment start rows not increasing: %v", f.StartRow)
		}
		starts = f.StartRow
	}
	if finalized == 0 {
		t.Fatal("rotated fragments must be finalized (bloom+footer)")
	}
}

func TestUnknownStreamletAndCrash(t *testing.T) {
	srv, _, net := newServer(t, 0)
	resp := appendRows(t, net, "s-9/sl-0", -1, 1)
	if !strings.HasPrefix(resp.Error, wire.ErrCodeUnknown) {
		t.Fatalf("unknown streamlet: %q", resp.Error)
	}
	createStreamlet(t, net, "s-1/sl-0")
	srv.Crash()
	if _, err := net.Unary(context.Background(), "ss-1", wire.MethodAppend, &wire.AppendRequest{Streamlet: "s-1/sl-0", ExpectedStreamOffset: -1}); err == nil {
		t.Fatal("crashed server still reachable")
	}
}

func TestFinalizeStreamletStopsAppends(t *testing.T) {
	_, _, net := newServer(t, 0)
	createStreamlet(t, net, "s-1/sl-0")
	appendRows(t, net, "s-1/sl-0", -1, 3)
	resp, err := net.Unary(context.Background(), "ss-1", wire.MethodFinalizeStreamlet, &wire.FinalizeStreamletRequest{Streamlet: "s-1/sl-0"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*wire.FinalizeStreamletResponse).RowCount != 3 {
		t.Fatalf("final rows = %d", resp.(*wire.FinalizeStreamletResponse).RowCount)
	}
	if r := appendRows(t, net, "s-1/sl-0", -1, 1); !strings.HasPrefix(r.Error, wire.ErrCodeStreamletClosed) {
		t.Fatalf("append after finalize: %q", r.Error)
	}
}

func TestAssignTSMonotonicAndDense(t *testing.T) {
	srv, _, _ := newServer(t, 0)
	var last truetime.Timestamp
	for i := 0; i < 1000; i++ {
		ts := srv.assignTS(5)
		if ts <= last {
			t.Fatalf("timestamps overlap: %d after %d+4", ts, last)
		}
		last = ts + 4 // the batch occupies [ts, ts+4]
	}
	// Timestamps stay close to real time (bounded drift).
	if drift := time.Duration(int64(last) - time.Now().UnixNano()); drift > time.Second {
		t.Fatalf("sequence drifted %v from wall time", drift)
	}
}
