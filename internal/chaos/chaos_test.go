package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vortex/internal/chaos"
	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/schema"
	"vortex/internal/verify"
)

// ---- Schedule unit behaviour ----------------------------------------

func TestFailAtTriggersOnExactOccurrences(t *testing.T) {
	s := chaos.NewSchedule(1).FailAt(chaos.PointRPCRequest, "ss-a/Append", 2, 4)
	ctx := context.Background()
	var got []int
	for i := 1; i <= 5; i++ {
		if err := s.Inject(ctx, chaos.PointRPCRequest, "ss-a/Append"); err != nil {
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("occurrence %d: %v", i, err)
			}
			got = append(got, i)
		}
	}
	if fmt.Sprint(got) != "[2 4]" {
		t.Fatalf("failed occurrences %v, want [2 4]", got)
	}
	if n := len(s.Events()); n != 2 {
		t.Fatalf("%d events logged, want 2", n)
	}
}

func TestTargetPatterns(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		pattern string
		target  string
		match   bool
	}{
		{"", "anything/Anywhere", true},
		{"ss-a-0", "ss-a-0/Append", true},
		{"ss-a-0", "ss-a-1/Append", false},
		{"ss-a-0/Append", "ss-a-0/Append", true},
		{"ss-a-0/Append", "ss-a-0/Flush", false},
		{"*/Append", "ss-b-2/Append", true},
		{"*/Append", "ss-b-2/Flush", false},
	}
	for _, c := range cases {
		s := chaos.NewSchedule(1).FailAt(chaos.PointRPCRequest, c.pattern, 1)
		err := s.Inject(ctx, chaos.PointRPCRequest, c.target)
		if got := err != nil; got != c.match {
			t.Errorf("pattern %q vs %q: injected=%v want %v", c.pattern, c.target, got, c.match)
		}
	}
}

func TestClusterOutageWindow(t *testing.T) {
	s := chaos.NewSchedule(1).ClusterOutage("beta", 2, 3)
	ctx := context.Background()
	if s.ClusterOut("beta") {
		t.Fatal("out before first write")
	}
	if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	if !s.ClusterOut("beta") {
		t.Fatal("next write falls in the window; ClusterOut must be true")
	}
	for i := 2; i <= 3; i++ {
		if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("write %d should fail: %v", i, err)
		}
	}
	if s.ClusterOut("beta") {
		t.Fatal("window passed; ClusterOut must be false")
	}
	if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); err != nil {
		t.Fatalf("write 4 should pass: %v", err)
	}
}

func TestManualOutageTogglesWithoutConsumingRules(t *testing.T) {
	s := chaos.NewSchedule(1).ClusterOutage("beta", 5, 5)
	ctx := context.Background()
	s.StartClusterOutage("beta")
	if !s.ClusterOut("beta") {
		t.Fatal("manual outage not visible")
	}
	if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("write during manual outage: %v", err)
	}
	s.EndClusterOutage("beta")
	if s.ClusterOut("beta") {
		t.Fatal("outage not healed")
	}
	// Occurrence-window rules still count their own matches: the manual
	// outage above consumed one occurrence (seen=1); three more writes
	// reach the scheduled 5th.
	for i := 0; i < 3; i++ {
		if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); err != nil {
			t.Fatalf("healed write %d: %v", i, err)
		}
	}
	if err := s.Inject(ctx, chaos.PointColossusWrite, "beta"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("scheduled 5th write should fail: %v", err)
	}
}

func TestDelayHonoursContext(t *testing.T) {
	s := chaos.NewSchedule(1).DelayAt(chaos.PointRPCRequest, "a/B", 10*time.Second, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Inject(ctx, chaos.PointRPCRequest, "a/B")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

// ---- End-to-end: deterministic injection log ------------------------

// chaosWorkload drives a fixed single-writer workload against a region
// whose schedule injects RPC failures, a latency spike, a Stream Server
// crash, and a Colossus outage window, and returns the injection log.
func chaosWorkload(t *testing.T) string {
	t.Helper()
	sched := chaos.NewSchedule(42).
		FailAt(chaos.PointRPCResponse, "*/Append", 2).
		DelayAt(chaos.PointRPCRequest, "*/Append", time.Millisecond, 4).
		CrashStreamServerAt("ss-alpha-0", 6).
		ClusterOutage("beta", 12, 15)
	cfg := core.DefaultConfig()
	cfg.Chaos = sched
	r := core.NewRegion(cfg)
	copts := client.DefaultOptions()
	copts.ForceUnary = true
	c := r.NewClient(copts)
	ctx := context.Background()
	sc := &schema.Schema{Fields: []*schema.Field{
		{Name: "k", Kind: schema.KindString, Mode: schema.Required},
		{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
	}}
	if err := c.CreateTable(ctx, "d.t", sc); err != nil {
		t.Fatal(err)
	}
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row := schema.NewRow(schema.String("k"), schema.Int64(int64(i)))
		if _, err := s.Append(ctx, []schema.Row{row}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return sched.LogString()
}

func TestInjectionLogIsDeterministic(t *testing.T) {
	first := chaosWorkload(t)
	second := chaosWorkload(t)
	if first == "" {
		t.Fatal("empty injection log: the schedule never fired")
	}
	if first != second {
		t.Fatalf("same schedule, same workload, different logs:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
	for _, want := range []string{"crash", "outage", "delay", "fail"} {
		if !strings.Contains(first, want) {
			t.Errorf("log lacks a %q event:\n%s", want, first)
		}
	}
}

// ---- End-to-end: exactly-once under crash + cluster outage ----------

// TestExactlyOnceUnderCrashAndOutage is the acceptance scenario: a
// Stream Server is killed mid-append AND one Colossus cluster goes out
// for a window; every acknowledged row must be present exactly once and
// both the degraded-write and retry counters must be nonzero.
func TestExactlyOnceUnderCrashAndOutage(t *testing.T) {
	sched := chaos.NewSchedule(7).CrashStreamServerAt("ss-alpha-0", 5)
	cfg := core.DefaultConfig()
	cfg.Chaos = sched
	r := core.NewRegion(cfg)
	c := r.NewClient(client.DefaultOptions())
	ctx := context.Background()
	sc := &schema.Schema{Fields: []*schema.Field{
		{Name: "k", Kind: schema.KindString, Mode: schema.Required},
		{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
	}}
	if err := c.CreateTable(ctx, "d.t", sc); err != nil {
		t.Fatal(err)
	}
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	ledger := verify.NewLedger()
	ts := verify.Track(s, ledger)

	appendN := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := schema.NewRow(schema.String(fmt.Sprintf("k-%04d", i)), schema.Int64(int64(i)))
			if _, err := ts.Append(ctx, []schema.Row{row}, client.AtOffset(int64(i))); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}

	// Phase 1: the first placement lands on ss-alpha-0, which the
	// schedule kills on its 5th append. The client retries the lost
	// attempt, rotates to a fresh streamlet elsewhere, and continues.
	appendN(0, 8)

	// Phase 2: cluster beta goes out. Dual-homed writes fail on the
	// beta replica and the server falls back to durable single-cluster
	// commits (§5.6).
	sched.StartClusterOutage("beta")
	appendN(8, 16)

	// Phase 3: beta heals; writes continue (already-degraded streamlets
	// stay single-homed, new ones are placed dual-homed again).
	sched.EndClusterOutage("beta")
	r.RestartStreamServer("ss-alpha-0")
	appendN(16, 24)

	report, err := verify.VerifyTable(ctx, c, "d.t", ledger, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("verification failed under chaos:\n%s", report)
	}
	if report.AppendsChecked != 24 {
		t.Fatalf("checked %d appends, want 24", report.AppendsChecked)
	}

	m := c.Metrics()
	if m.Retries == 0 {
		t.Fatal("no retries recorded; the crash should have forced at least one")
	}
	if m.Rotations == 0 {
		t.Fatal("no rotations recorded; the crash should have forced one")
	}
	var degraded int64
	for _, srv := range r.StreamServers {
		degraded += srv.Stats().DegradedWrites
	}
	if degraded == 0 {
		t.Fatal("no degraded single-cluster writes during the beta outage")
	}
	log := sched.LogString()
	if !strings.Contains(log, "crash") || !strings.Contains(log, "outage") {
		t.Fatalf("injection log missing crash/outage events:\n%s", log)
	}
}

// TestLostResponseIsReplayedNotDuplicated pins the retransmission-memo
// path: the server commits the write, the response is dropped, and the
// client's flagged retry must receive the original ack — not a
// WRONG_OFFSET, and the rows must not be doubled.
func TestLostResponseIsReplayedNotDuplicated(t *testing.T) {
	sched := chaos.NewSchedule(3).FailAt(chaos.PointRPCResponse, "*/Append", 3)
	cfg := core.DefaultConfig()
	cfg.Chaos = sched
	r := core.NewRegion(cfg)
	copts := client.DefaultOptions()
	copts.ForceUnary = true
	c := r.NewClient(copts)
	ctx := context.Background()
	sc := &schema.Schema{Fields: []*schema.Field{
		{Name: "k", Kind: schema.KindString, Mode: schema.Required},
		{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
	}}
	if err := c.CreateTable(ctx, "d.t", sc); err != nil {
		t.Fatal(err)
	}
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	ledger := verify.NewLedger()
	ts := verify.Track(s, ledger)
	for i := 0; i < 6; i++ {
		row := schema.NewRow(schema.String(fmt.Sprintf("k-%d", i)), schema.Int64(int64(i)))
		if _, err := ts.Append(ctx, []schema.Row{row}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	report, err := verify.VerifyTable(ctx, c, "d.t", ledger, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("lost response broke exactly-once:\n%s", report)
	}
	if c.Metrics().Retries == 0 {
		t.Fatal("the dropped response should have forced a retry")
	}
	_ = r
}
