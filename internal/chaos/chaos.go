// Package chaos is a deterministic, seedable fault-injection schedule
// for the simulated region. Subsystems call Inject at named cut-points
// (one per failure surface the paper's availability story exercises,
// §5.6, §7.3); the schedule decides — from explicit occurrence rules or
// a seeded RNG — whether that operation is dropped, delayed, or turned
// into a process crash, and records every triggered injection in an
// event log so tests can assert that the same schedule produces the
// same failures.
//
// The consuming packages (rpc, colossus, streamserver) do not import
// this package; each declares a small local interface that *Schedule
// satisfies, and internal/core wires one schedule through the whole
// region (Region.Chaos()).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cut-point names. Targets are:
//
//	rpc.request / rpc.response  →  "addr/Method" (e.g. "ss-alpha-0/Append")
//	rpc.stream.send             →  "addr"
//	rpc.stream.response        →  "addr"
//	colossus.write / .read      →  cluster name
//	streamserver.append         →  server addr
const (
	PointRPCRequest    = "rpc.request"
	PointRPCResponse   = "rpc.response"
	PointStreamSend    = "rpc.stream.send"
	PointStreamResp    = "rpc.stream.response"
	PointColossusWrite = "colossus.write"
	PointColossusRead  = "colossus.read"
	PointAppend        = "streamserver.append"
)

// Crasher kinds for OnCrash callbacks.
const (
	KindStreamServer = "streamserver"
	KindSMS          = "sms"
)

// ErrInjected is the base error of every injected failure.
var ErrInjected = errors.New("chaos: injected failure")

// Event is one triggered injection. Occurrence is the 1-based count of
// matches of the triggering rule, which is deterministic for a given
// schedule and workload.
type Event struct {
	Point      string
	Target     string
	Occurrence int64
	Action     string // "fail", "delay", "crash", "outage"
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s #%d %s", e.Point, e.Target, e.Occurrence, e.Action)
}

const (
	actionFail   = "fail"
	actionDelay  = "delay"
	actionCrash  = "crash"
	actionOutage = "outage"
)

// rule is one injection rule. A rule matches when its point equals the
// cut-point and its target pattern matches the target; each rule counts
// its own matches (seen) and triggers on explicit occurrences, an
// occurrence window, or a per-rule seeded coin flip.
type rule struct {
	point  string
	target string // "", "addr", "addr/Method", or "*/Method"
	action string

	occurrences map[int64]bool
	from, to    int64 // 1-based inclusive window; 0,0 = unused
	prob        float64
	rng         *rand.Rand

	delay     time.Duration
	crashKind string

	seen int64
}

func (r *rule) matches(point, target string) bool {
	if r.point != point {
		return false
	}
	switch {
	case r.target == "":
		return true
	case r.target == target:
		return true
	case strings.HasPrefix(r.target, "*/"):
		return strings.HasSuffix(target, r.target[1:])
	default:
		return strings.HasPrefix(target, r.target+"/")
	}
}

// triggers reports whether the rule fires on its n'th match.
func (r *rule) triggers(n int64) bool {
	if r.occurrences != nil {
		return r.occurrences[n]
	}
	if r.to > 0 {
		return n >= r.from && n <= r.to
	}
	if r.prob > 0 {
		return r.rng.Float64() < r.prob
	}
	return false
}

// Schedule is a deterministic fault-injection plan. Safe for concurrent
// use. The zero value is not usable; call NewSchedule.
type Schedule struct {
	mu       sync.Mutex
	seed     int64
	rules    []*rule
	events   []Event
	crashers map[string]func(target string)
	manual   map[string]bool // manually-toggled cluster outages
	paused   bool
}

// NewSchedule returns an empty schedule. The seed drives every
// probabilistic rule through per-rule RNGs, so two schedules built the
// same way inject identically on identical workloads.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed, crashers: make(map[string]func(string)), manual: make(map[string]bool)}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

func (s *Schedule) add(r *rule) *Schedule {
	s.mu.Lock()
	r.rng = rand.New(rand.NewSource(s.seed + int64(len(s.rules))*7919))
	s.rules = append(s.rules, r)
	s.mu.Unlock()
	return s
}

// FailAt fails the nth occurrences (1-based) of point/target.
func (s *Schedule) FailAt(point, target string, nth ...int64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionFail, occurrences: occSet(nth)})
}

// FailBetween fails occurrences from..to (1-based, inclusive).
func (s *Schedule) FailBetween(point, target string, from, to int64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionFail, from: from, to: to})
}

// FailProb fails each occurrence with probability p (per-rule seeded
// RNG; deterministic only for a deterministic match order).
func (s *Schedule) FailProb(point, target string, p float64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionFail, prob: p})
}

// DelayAt injects a latency spike of d at the nth occurrences. The
// sleep honours the caller's context, so per-attempt deadlines fire.
func (s *Schedule) DelayAt(point, target string, d time.Duration, nth ...int64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionDelay, delay: d, occurrences: occSet(nth)})
}

// DelayBetween injects a latency spike of d on occurrences from..to
// (1-based, inclusive).
func (s *Schedule) DelayBetween(point, target string, d time.Duration, from, to int64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionDelay, delay: d, from: from, to: to})
}

// DelayProb injects a latency spike of d with probability p.
func (s *Schedule) DelayProb(point, target string, d time.Duration, p float64) *Schedule {
	return s.add(&rule{point: point, target: target, action: actionDelay, delay: d, prob: p})
}

// CrashStreamServerAt crashes the Stream Server at addr when it serves
// its nth append (the append fails; the server vanishes from the
// network until restarted). Requires an OnCrash(KindStreamServer, ...)
// callback, which internal/core installs.
func (s *Schedule) CrashStreamServerAt(addr string, nth int64) *Schedule {
	return s.add(&rule{point: PointAppend, target: addr, action: actionCrash,
		crashKind: KindStreamServer, occurrences: occSet([]int64{nth})})
}

// CrashSMSTaskAt crashes the SMS task at addr when it receives its nth
// RPC (the request fails; the task's durable state survives in Spanner
// and a restart resumes it). Requires an OnCrash(KindSMS, ...) callback.
func (s *Schedule) CrashSMSTaskAt(addr string, nth int64) *Schedule {
	return s.add(&rule{point: PointRPCRequest, target: addr, action: actionCrash,
		crashKind: KindSMS, occurrences: occSet([]int64{nth})})
}

// ClusterOutage schedules a Colossus outage window on cluster: write
// occurrences from..to (1-based, inclusive) fail, and ClusterOut
// reports true while the next write would still fall in the window —
// the §5.6 disaster case driving degraded single-cluster commits.
func (s *Schedule) ClusterOutage(cluster string, from, to int64) *Schedule {
	return s.add(&rule{point: PointColossusWrite, target: cluster, action: actionOutage, from: from, to: to})
}

// StartClusterOutage marks cluster out until EndClusterOutage: every
// write to it fails and ClusterOut(cluster) reports true. Tests use
// this form to phase outages around workload steps.
func (s *Schedule) StartClusterOutage(cluster string) {
	s.mu.Lock()
	s.manual[cluster] = true
	s.mu.Unlock()
}

// EndClusterOutage heals a manual outage.
func (s *Schedule) EndClusterOutage(cluster string) {
	s.mu.Lock()
	delete(s.manual, cluster)
	s.mu.Unlock()
}

// ClusterOut reports whether cluster is currently marked out — the
// signal the write path consults before falling back to single-cluster
// replication (§5.6).
func (s *Schedule) ClusterOut(cluster string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manual[cluster] {
		return true
	}
	for _, r := range s.rules {
		if r.action == actionOutage && r.target == cluster && r.to > 0 && r.seen+1 >= r.from && r.seen+1 <= r.to {
			return true
		}
	}
	return false
}

// Pause suspends injection: Inject returns nil without matching rules
// or advancing occurrence counters, freezing every fault window. The
// deterministic simulation pauses the schedule while it observes
// invariants, so verification reads neither fail nor consume the
// occurrences the workload phase would otherwise see — measurement must
// not perturb the system under test.
func (s *Schedule) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume re-enables injection after Pause.
func (s *Schedule) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// OnCrash installs the callback invoked when a crash rule of the given
// kind fires. internal/core wires region crash/restart here.
func (s *Schedule) OnCrash(kind string, fn func(target string)) {
	s.mu.Lock()
	s.crashers[kind] = fn
	s.mu.Unlock()
}

// Inject evaluates every matching rule at a cut-point. It sleeps for
// triggered delays (honouring ctx) and returns a non-nil error wrapped
// around ErrInjected when a fail, outage, or crash rule fires. Crash
// callbacks run before Inject returns.
func (s *Schedule) Inject(ctx context.Context, point, target string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.paused {
		s.mu.Unlock()
		return nil
	}
	var (
		delay   time.Duration
		failed  *Event
		crashes []func()
	)
	// Manual outages fail writes without consuming rule occurrences.
	if point == PointColossusWrite && s.manual[target] {
		e := Event{Point: point, Target: target, Occurrence: 0, Action: actionOutage}
		s.events = append(s.events, e)
		failed = &e
	}
	for _, r := range s.rules {
		if !r.matches(point, target) {
			continue
		}
		r.seen++
		if !r.triggers(r.seen) {
			continue
		}
		e := Event{Point: point, Target: target, Occurrence: r.seen, Action: r.action}
		s.events = append(s.events, e)
		switch r.action {
		case actionDelay:
			delay += r.delay
		case actionCrash:
			if fn := s.crashers[r.crashKind]; fn != nil {
				t := target
				if i := strings.IndexByte(t, '/'); i >= 0 && r.crashKind == KindSMS {
					t = t[:i]
				}
				crashes = append(crashes, func() { fn(t) })
			}
			if failed == nil {
				failed = &e
			}
		default: // fail, outage
			if failed == nil {
				failed = &e
			}
		}
	}
	s.mu.Unlock()
	for _, c := range crashes {
		c()
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if failed != nil {
		return fmt.Errorf("%w: %s", ErrInjected, failed)
	}
	return nil
}

// Events returns a copy of the injection log in trigger order.
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// LogString renders the injection log in a canonical order — sorted by
// (point, target, occurrence, action) — so logs from runs whose only
// nondeterminism is goroutine interleaving still compare equal.
func (s *Schedule) LogString() string {
	evs := s.Events()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Occurrence != b.Occurrence {
			return a.Occurrence < b.Occurrence
		}
		return a.Action < b.Action
	})
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func occSet(nth []int64) map[int64]bool {
	m := make(map[int64]bool, len(nth))
	for _, n := range nth {
		m[n] = true
	}
	return m
}
