package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Spec is one serializable fault event: a single chaos rule in a form
// that can be printed into a repro line, parsed back, and subset during
// schedule minimization. The deterministic simulation generates a random
// []Spec from its seed, applies it with AddSpec, and on an invariant
// failure bisects the slice down to a minimal failing subset.
//
// The canonical text forms (parsed by ParseSpec) are:
//
//	fail:<point>:<target>:<from>-<to>
//	delay:<point>:<target>:<from>-<to>:<duration>
//	crash-ss:<addr>:<nth>
//	crash-sms:<addr>:<nth>
//	outage:<cluster>:<from>-<to>
type Spec struct {
	// Action is one of "fail", "delay", "crash-ss", "crash-sms", "outage".
	Action string
	// Point is the cut-point for fail/delay specs (unused otherwise).
	Point string
	// Target is the rule target: "addr", "addr/Method", or a cluster.
	Target string
	// From and To bound the 1-based occurrence window (inclusive). Crash
	// specs use only From.
	From, To int64
	// Delay is the injected latency for delay specs.
	Delay time.Duration
}

// Spec actions.
const (
	SpecFail     = "fail"
	SpecDelay    = "delay"
	SpecCrashSS  = "crash-ss"
	SpecCrashSMS = "crash-sms"
	SpecOutage   = "outage"
)

// String renders the spec in its canonical parseable form.
func (sp Spec) String() string {
	switch sp.Action {
	case SpecDelay:
		return fmt.Sprintf("%s:%s:%s:%d-%d:%s", sp.Action, sp.Point, sp.Target, sp.From, sp.To, sp.Delay)
	case SpecCrashSS, SpecCrashSMS:
		return fmt.Sprintf("%s:%s:%d", sp.Action, sp.Target, sp.From)
	case SpecOutage:
		return fmt.Sprintf("%s:%s:%d-%d", sp.Action, sp.Target, sp.From, sp.To)
	default:
		return fmt.Sprintf("%s:%s:%s:%d-%d", sp.Action, sp.Point, sp.Target, sp.From, sp.To)
	}
}

// ParseSpec parses the canonical form produced by Spec.String.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	bad := func() (Spec, error) { return Spec{}, fmt.Errorf("chaos: malformed spec %q", s) }
	if len(parts) < 3 {
		return bad()
	}
	sp := Spec{Action: parts[0]}
	switch sp.Action {
	case SpecFail:
		if len(parts) != 4 {
			return bad()
		}
		sp.Point, sp.Target = parts[1], parts[2]
		if !parseWindow(parts[3], &sp.From, &sp.To) {
			return bad()
		}
	case SpecDelay:
		if len(parts) != 5 {
			return bad()
		}
		sp.Point, sp.Target = parts[1], parts[2]
		if !parseWindow(parts[3], &sp.From, &sp.To) {
			return bad()
		}
		d, err := time.ParseDuration(parts[4])
		if err != nil {
			return bad()
		}
		sp.Delay = d
	case SpecCrashSS, SpecCrashSMS:
		if len(parts) != 3 {
			return bad()
		}
		sp.Target = parts[1]
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return bad()
		}
		sp.From, sp.To = n, n
	case SpecOutage:
		if len(parts) != 3 {
			return bad()
		}
		sp.Target = parts[1]
		if !parseWindow(parts[2], &sp.From, &sp.To) {
			return bad()
		}
	default:
		return bad()
	}
	return sp, nil
}

func parseWindow(s string, from, to *int64) bool {
	i := strings.IndexByte(s, '-')
	if i <= 0 {
		return false
	}
	f, err1 := strconv.ParseInt(s[:i], 10, 64)
	t, err2 := strconv.ParseInt(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil || f < 1 || t < f {
		return false
	}
	*from, *to = f, t
	return true
}

// FormatSpecs joins specs into the single comma-separated token used in
// repro lines (empty string for no specs).
func FormatSpecs(specs []Spec) string {
	ss := make([]string, len(specs))
	for i, sp := range specs {
		ss[i] = sp.String()
	}
	return strings.Join(ss, ",")
}

// ParseSpecs parses a FormatSpecs token. An empty string yields nil.
func ParseSpecs(s string) ([]Spec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []Spec
	for _, tok := range strings.Split(s, ",") {
		sp, err := ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// AddSpec applies one spec as a schedule rule.
func (s *Schedule) AddSpec(sp Spec) *Schedule {
	switch sp.Action {
	case SpecFail:
		return s.FailBetween(sp.Point, sp.Target, sp.From, sp.To)
	case SpecDelay:
		return s.DelayBetween(sp.Point, sp.Target, sp.Delay, sp.From, sp.To)
	case SpecCrashSS:
		return s.CrashStreamServerAt(sp.Target, sp.From)
	case SpecCrashSMS:
		return s.CrashSMSTaskAt(sp.Target, sp.From)
	case SpecOutage:
		return s.ClusterOutage(sp.Target, sp.From, sp.To)
	default:
		panic(fmt.Sprintf("chaos: unknown spec action %q", sp.Action))
	}
}

// FromSpecs builds a schedule carrying every spec. The seed only matters
// for probabilistic rules added later; specs themselves are occurrence-
// deterministic.
func FromSpecs(seed int64, specs []Spec) *Schedule {
	s := NewSchedule(seed)
	for _, sp := range specs {
		s.AddSpec(sp)
	}
	return s
}

// Topology names the fault surfaces of a region, in the fixed order the
// random generator indexes them. Build it from sorted address lists so
// that generation is a pure function of the RNG.
type Topology struct {
	Servers  []string // Stream Server addresses
	SMS      []string // SMS task addresses
	Clusters []string // Colossus cluster names
}

// RandomSpecs derives n fault specs from rng against the topology. The
// mix leans on the failure modes of the paper's availability story:
// dropped/slow RPCs, Stream Server and SMS crashes, and cluster outage
// windows. Occurrence windows are kept small (single digits wide, first
// ~60 occurrences) so short runs still intersect them.
func RandomSpecs(rng *rand.Rand, topo Topology, n int) []Spec {
	var specs []Spec
	window := func(maxWidth int64) (int64, int64) {
		from := 1 + rng.Int63n(60)
		return from, from + rng.Int63n(maxWidth)
	}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	for i := 0; i < n; i++ {
		// Weighted action choice: RPC faults are the common case, crashes
		// and outages the rare heavy hitters.
		switch p := rng.Intn(10); {
		case p < 3 && len(topo.Servers) > 0: // drop an append-path RPC
			from, to := window(3)
			specs = append(specs, Spec{Action: SpecFail, Point: PointRPCRequest, Target: pick(topo.Servers), From: from, To: to})
		case p < 5 && len(topo.Servers) > 0: // lose the ack instead
			from, to := window(2)
			specs = append(specs, Spec{Action: SpecFail, Point: PointRPCResponse, Target: pick(topo.Servers), From: from, To: to})
		case p < 6 && len(topo.SMS) > 0: // control-plane RPC failures
			from, to := window(2)
			specs = append(specs, Spec{Action: SpecFail, Point: PointRPCRequest, Target: pick(topo.SMS), From: from, To: to})
		case p < 7 && len(topo.Clusters) > 0: // slow Colossus writes
			from, to := window(4)
			d := time.Duration(1+rng.Intn(2)) * time.Millisecond
			specs = append(specs, Spec{Action: SpecDelay, Point: PointColossusWrite, Target: pick(topo.Clusters), From: from, To: to, Delay: d})
		case p < 8 && len(topo.Servers) > 0:
			specs = append(specs, Spec{Action: SpecCrashSS, Target: pick(topo.Servers), From: 1 + rng.Int63n(40)})
		case p < 9 && len(topo.SMS) > 0:
			specs = append(specs, Spec{Action: SpecCrashSMS, Target: pick(topo.SMS), From: 1 + rng.Int63n(40)})
		case len(topo.Clusters) > 0:
			from, to := window(8)
			specs = append(specs, Spec{Action: SpecOutage, Target: pick(topo.Clusters), From: from, To: to})
		}
	}
	// Normalize crash specs' From/To invariants for String round-trips.
	for i := range specs {
		if specs[i].To < specs[i].From {
			specs[i].To = specs[i].From
		}
	}
	return specs
}

// MinimizeSpecs shrinks specs to a smaller subset for which failsWith
// still reports a failure, using delta debugging: first try dropping
// halves, then single specs, until no single removal preserves the
// failure. failsWith must be a pure function of its argument (re-run the
// whole simulation from the same seed with the candidate subset). The
// input slice is returned unchanged when it does not fail at all.
func MinimizeSpecs(specs []Spec, failsWith func([]Spec) bool) []Spec {
	if !failsWith(specs) {
		return specs
	}
	cur := append([]Spec(nil), specs...)
	// Bisection pass: repeatedly try to keep only one half.
	for changed := true; changed && len(cur) > 1; {
		changed = false
		mid := len(cur) / 2
		halves := [][]Spec{cur[:mid], cur[mid:]}
		for _, h := range halves {
			if failsWith(h) {
				cur = append([]Spec(nil), h...)
				changed = true
				break
			}
		}
	}
	// Greedy single-removal pass to a local minimum. Removing the last
	// spec is tried too: a failure that reproduces with the empty program
	// is not caused by the chaos schedule at all.
	for changed := true; changed && len(cur) > 0; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]Spec, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if failsWith(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}
