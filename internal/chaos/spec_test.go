package chaos

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Action: SpecFail, Point: PointRPCRequest, Target: "ss-alpha-0", From: 3, To: 5},
		{Action: SpecFail, Point: PointRPCResponse, Target: "ss-beta-1/Append", From: 1, To: 1},
		{Action: SpecDelay, Point: PointColossusWrite, Target: "alpha", From: 2, To: 6, Delay: 2 * time.Millisecond},
		{Action: SpecCrashSS, Target: "ss-alpha-2", From: 7, To: 7},
		{Action: SpecCrashSMS, Target: "sms-1", From: 4, To: 4},
		{Action: SpecOutage, Target: "beta", From: 10, To: 30},
	}
	for _, sp := range specs {
		got, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", sp.String(), err)
		}
		if got != sp {
			t.Errorf("round trip %q: got %+v want %+v", sp.String(), got, sp)
		}
	}
	tok := FormatSpecs(specs)
	back, err := ParseSpecs(tok)
	if err != nil {
		t.Fatalf("ParseSpecs(%q): %v", tok, err)
	}
	if !reflect.DeepEqual(back, specs) {
		t.Errorf("ParseSpecs(FormatSpecs(...)) = %+v, want %+v", back, specs)
	}
	if got, err := ParseSpecs(""); err != nil || got != nil {
		t.Errorf("ParseSpecs(\"\") = %v, %v; want nil, nil", got, err)
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "fail", "fail:rpc.request:x", "fail:rpc.request:x:0-3",
		"fail:rpc.request:x:5-3", "delay:colossus.write:alpha:1-2:zzz",
		"crash-ss:addr:x", "outage:alpha:abc", "warp:rpc.request:x:1-2",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", s)
		}
	}
}

func TestAddSpecInjects(t *testing.T) {
	ctx := context.Background()
	s := FromSpecs(1, []Spec{
		{Action: SpecFail, Point: PointRPCRequest, Target: "ss-0", From: 2, To: 2},
	})
	if err := s.Inject(ctx, PointRPCRequest, "ss-0/Append"); err != nil {
		t.Fatalf("occurrence 1 should pass: %v", err)
	}
	if err := s.Inject(ctx, PointRPCRequest, "ss-0/Append"); err == nil {
		t.Fatal("occurrence 2 should fail")
	}
	if err := s.Inject(ctx, PointRPCRequest, "ss-0/Append"); err != nil {
		t.Fatalf("occurrence 3 should pass: %v", err)
	}
}

func TestRandomSpecsDeterministic(t *testing.T) {
	topo := Topology{
		Servers:  []string{"ss-alpha-0", "ss-alpha-1", "ss-beta-0"},
		SMS:      []string{"sms-0", "sms-1"},
		Clusters: []string{"alpha", "beta"},
	}
	a := RandomSpecs(rand.New(rand.NewSource(42)), topo, 12)
	b := RandomSpecs(rand.New(rand.NewSource(42)), topo, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different specs:\n%v\n%v", a, b)
	}
	c := RandomSpecs(rand.New(rand.NewSource(43)), topo, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical specs")
	}
	// Everything generated must round-trip through the text form.
	back, err := ParseSpecs(FormatSpecs(a))
	if err != nil {
		t.Fatalf("generated specs do not round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, a) {
		t.Fatal("generated specs changed across round-trip")
	}
}

func TestMinimizeSpecs(t *testing.T) {
	specs := []Spec{
		{Action: SpecFail, Point: PointRPCRequest, Target: "a", From: 1, To: 1},
		{Action: SpecCrashSS, Target: "ss-0", From: 3, To: 3},
		{Action: SpecOutage, Target: "beta", From: 2, To: 4},
		{Action: SpecFail, Point: PointRPCResponse, Target: "b", From: 2, To: 2},
		{Action: SpecCrashSMS, Target: "sms-1", From: 5, To: 5},
	}
	// Failure requires the crash-ss AND the outage together.
	fails := func(ss []Spec) bool {
		var crash, outage bool
		for _, sp := range ss {
			if sp.Action == SpecCrashSS {
				crash = true
			}
			if sp.Action == SpecOutage {
				outage = true
			}
		}
		return crash && outage
	}
	got := MinimizeSpecs(specs, fails)
	if len(got) != 2 {
		t.Fatalf("minimized to %d specs (%v), want 2", len(got), got)
	}
	if !fails(got) {
		t.Fatal("minimized subset no longer fails")
	}

	// A non-failing input is returned unchanged.
	passAll := func([]Spec) bool { return false }
	if got := MinimizeSpecs(specs, passAll); !reflect.DeepEqual(got, specs) {
		t.Fatal("non-failing specs should be returned unchanged")
	}

	// A single-spec culprit minimizes to exactly that spec.
	one := MinimizeSpecs(specs, func(ss []Spec) bool {
		for _, sp := range ss {
			if sp.Action == SpecCrashSMS {
				return true
			}
		}
		return false
	})
	if len(one) != 1 || one[0].Action != SpecCrashSMS {
		t.Fatalf("want the single crash-sms spec, got %v", one)
	}
}
