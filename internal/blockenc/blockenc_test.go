package blockenc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSealer(t testing.TB) *Sealer {
	t.Helper()
	return NewSealer(NewKeyring())
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newSealer(t)
	plain := bytes.Repeat([]byte("customerKey=ACME;region=us-west;"), 1000)
	sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("round trip mismatch")
	}
	// Compression must have helped on this repetitive payload even after
	// the header overhead.
	if len(sealed) > len(plain)/4 {
		t.Fatalf("sealed %d bytes for %d plaintext; expected >4:1", len(sealed), len(plain))
	}
}

func TestSealRoundTripProperty(t *testing.T) {
	s := newSealer(t)
	f := func(plain []byte) bool {
		sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
		if err != nil {
			return false
		}
		got, err := s.Open(sealed)
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSealRejectsBadClientCRC(t *testing.T) {
	s := newSealer(t)
	plain := []byte("some rows")
	if _, err := s.Seal(plain, Checksum(plain)+1, SystemKey); err == nil {
		t.Fatal("Seal accepted a wrong end-to-end CRC")
	}
}

func TestOpenDetectsEveryBitFlip(t *testing.T) {
	s := newSealer(t)
	plain := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), sealed...)
		i := rng.Intn(len(corrupt))
		corrupt[i] ^= 1 << uint(rng.Intn(8))
		got, err := s.Open(corrupt)
		if err == nil && bytes.Equal(got, plain) {
			// Flipping a bit in the (unverified) IV region would change
			// the ciphertext CRC, so literally every byte is covered.
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestOpenRejectsTruncationAndGarbage(t *testing.T) {
	s := newSealer(t)
	plain := []byte("payload")
	sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < headerSize; cut++ {
		if _, err := s.Open(sealed[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := s.Open([]byte("AAAA totally not a sealed block, padded to length")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCustomerKeyIsolation(t *testing.T) {
	kr := NewKeyring()
	customer := bytes.Repeat([]byte{7}, 32)
	if err := kr.SetKey(CustomerKey, customer); err != nil {
		t.Fatal(err)
	}
	s := NewSealer(kr)
	plain := []byte("customer data")
	sealed, err := s.Seal(plain, Checksum(plain), CustomerKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(sealed)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("customer-key round trip failed: %v", err)
	}
	// A keyring without the customer key cannot open the block.
	other := NewSealer(NewKeyring())
	if _, err := other.Open(sealed); err == nil {
		t.Fatal("block sealed with a customer key opened without it")
	}
}

func TestSetKeyValidatesLength(t *testing.T) {
	kr := NewKeyring()
	if err := kr.SetKey(CustomerKey, []byte("short")); err == nil {
		t.Fatal("16-byte-short key accepted")
	}
}

func TestCiphertextLooksEncrypted(t *testing.T) {
	s := newSealer(t)
	plain := bytes.Repeat([]byte("A"), 4096)
	sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	// The payload must not contain long runs of the plaintext byte:
	// data is "in encrypted form while being sent over RPC ... and at rest".
	if bytes.Contains(sealed[headerSize:], bytes.Repeat([]byte("A"), 16)) {
		t.Fatal("sealed payload leaks plaintext runs")
	}
}

func TestDistinctIVsPerSeal(t *testing.T) {
	s := newSealer(t)
	plain := []byte("same plaintext")
	a, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a[5:21], b[5:21]) {
		t.Fatal("IV reuse across Seal calls")
	}
	if bytes.Equal(a[headerSize:], b[headerSize:]) {
		t.Fatal("identical ciphertext for identical plaintext (CTR misuse)")
	}
}

func TestChecksumIsCRC32C(t *testing.T) {
	// Known-answer test: CRC-32C("123456789") = 0xE3069283.
	if got := Checksum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("Checksum = %08x, want E3069283 (Castagnoli)", got)
	}
}

func BenchmarkSeal2MB(b *testing.B) {
	s := newSealer(b)
	plain := bytes.Repeat([]byte("customerKey=ACME;region=us-west;qty=3;\n"), 2<<20/39)
	crc := Checksum(plain)
	b.SetBytes(int64(len(plain)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(plain, crc, SystemKey); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen2MB(b *testing.B) {
	s := newSealer(b)
	plain := bytes.Repeat([]byte("customerKey=ACME;region=us-west;qty=3;\n"), 2<<20/39)
	sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(plain)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
