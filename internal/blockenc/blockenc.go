// Package blockenc implements the data-protection envelope every WOS
// block passes through (§5.4.5): Snappy compression, AES-CTR encryption
// with either the system key or a customer-supplied key, and end-to-end
// CRC32C checksums. The paper's guards are reproduced exactly:
//
//   - the CRC travels with the data from client to Stream Server to
//     Colossus, so corruption in memory or in flight fails the write;
//   - after compressing, the Stream Server decompresses its own output
//     and verifies the CRC matches the original bytes, catching
//     corruption introduced *by* compression;
//   - data is encrypted before it leaves the Stream Server, so it is in
//     encrypted form over RPC, at rest and while being read back.
package blockenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"vortex/internal/snappy"
)

// castagnoli is the CRC32C polynomial table (the checksum Colossus and
// the RPC layer verify).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrChecksum is returned when a CRC32C verification fails anywhere in
// the envelope.
var ErrChecksum = errors.New("blockenc: checksum mismatch")

// ErrCorrupt is returned for structurally invalid sealed blocks.
var ErrCorrupt = errors.New("blockenc: corrupt sealed block")

// KeyID identifies which encryption key sealed a block.
type KeyID uint8

// Key identifiers. SystemKey is the default; CustomerKey models
// customer-supplied encryption keys (CMEK).
const (
	SystemKey KeyID = iota
	CustomerKey
)

// Keyring holds the AES-256 keys available to a Stream Server.
type Keyring struct {
	keys map[KeyID][]byte
}

// NewKeyring returns a keyring with a generated system key.
func NewKeyring() *Keyring {
	k := &Keyring{keys: make(map[KeyID][]byte)}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic(fmt.Sprintf("blockenc: generating system key: %v", err))
	}
	k.keys[SystemKey] = key
	return k
}

// SetKey installs (or replaces) the key for id. The key must be 32 bytes.
func (k *Keyring) SetKey(id KeyID, key []byte) error {
	if len(key) != 32 {
		return fmt.Errorf("blockenc: key for id %d must be 32 bytes, got %d", id, len(key))
	}
	k.keys[id] = append([]byte(nil), key...)
	return nil
}

func (k *Keyring) key(id KeyID) ([]byte, error) {
	key, ok := k.keys[id]
	if !ok {
		return nil, fmt.Errorf("blockenc: no key with id %d", id)
	}
	return key, nil
}

// Sealed block layout:
//
//	[0:4)   magic "VXB1"
//	[4]     key id
//	[5:21)  AES-CTR IV
//	[21:25) plaintext length (uint32 LE)
//	[25:29) plaintext CRC32C
//	[29:33) ciphertext CRC32C (integrity of the stored bytes themselves)
//	[33:)   ciphertext = AES-CTR(snappy(plaintext))
const (
	magic      = "VXB1"
	headerSize = 33
)

// Sealer seals and opens blocks with a keyring.
type Sealer struct {
	keyring *Keyring
}

// NewSealer returns a Sealer over keyring.
func NewSealer(keyring *Keyring) *Sealer { return &Sealer{keyring: keyring} }

// Seal applies the full envelope to plaintext using the key identified by
// id. expectedCRC is the end-to-end checksum that accompanied the data
// from the client; Seal first verifies it, then compresses, then performs
// the paper's decompress-and-verify guard, then encrypts.
func (s *Sealer) Seal(plaintext []byte, expectedCRC uint32, id KeyID) ([]byte, error) {
	if got := Checksum(plaintext); got != expectedCRC {
		return nil, fmt.Errorf("%w: client CRC %08x, computed %08x", ErrChecksum, expectedCRC, got)
	}
	key, err := s.keyring.key(id)
	if err != nil {
		return nil, err
	}

	compressed := snappy.Encode(plaintext)
	// Decompress-and-verify guard (§5.4.5): prove the compressor did not
	// corrupt the data before the original bytes are dropped.
	verify, err := snappy.Decode(compressed)
	if err != nil {
		return nil, fmt.Errorf("blockenc: verifying compression: %w", err)
	}
	if Checksum(verify) != expectedCRC {
		return nil, fmt.Errorf("%w: compression corrupted data", ErrChecksum)
	}

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("blockenc: cipher: %w", err)
	}
	out := make([]byte, headerSize+len(compressed))
	copy(out[0:4], magic)
	out[4] = byte(id)
	iv := out[5:21]
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("blockenc: generating IV: %w", err)
	}
	binary.LittleEndian.PutUint32(out[21:25], uint32(len(plaintext)))
	binary.LittleEndian.PutUint32(out[25:29], expectedCRC)
	cipher.NewCTR(block, iv).XORKeyStream(out[headerSize:], compressed)
	binary.LittleEndian.PutUint32(out[29:33], Checksum(out[headerSize:]))
	return out, nil
}

// Open reverses Seal: verifies the stored-byte CRC, decrypts,
// decompresses and verifies the end-to-end plaintext CRC.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < headerSize || string(sealed[0:4]) != magic {
		return nil, ErrCorrupt
	}
	id := KeyID(sealed[4])
	key, err := s.keyring.key(id)
	if err != nil {
		return nil, err
	}
	iv := sealed[5:21]
	plainLen := binary.LittleEndian.Uint32(sealed[21:25])
	plainCRC := binary.LittleEndian.Uint32(sealed[25:29])
	cipherCRC := binary.LittleEndian.Uint32(sealed[29:33])
	ciphertext := sealed[headerSize:]
	if Checksum(ciphertext) != cipherCRC {
		return nil, fmt.Errorf("%w: stored bytes corrupted", ErrChecksum)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("blockenc: cipher: %w", err)
	}
	compressed := make([]byte, len(ciphertext))
	cipher.NewCTR(block, iv).XORKeyStream(compressed, ciphertext)
	plaintext, err := snappy.Decode(compressed)
	if err != nil {
		return nil, fmt.Errorf("blockenc: decompress: %w", err)
	}
	if uint32(len(plaintext)) != plainLen {
		return nil, fmt.Errorf("%w: length %d, header says %d", ErrCorrupt, len(plaintext), plainLen)
	}
	if Checksum(plaintext) != plainCRC {
		return nil, fmt.Errorf("%w: plaintext corrupted", ErrChecksum)
	}
	return plaintext, nil
}

// SealedOverhead returns the fixed per-block byte overhead of the
// envelope (excluding compression effects).
func SealedOverhead() int { return headerSize }
