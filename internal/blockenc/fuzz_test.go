package blockenc

import (
	"bytes"
	"testing"
)

// FuzzOpen feeds arbitrary bytes to the block envelope opener: hostile
// inputs (bad magic, truncated headers, flipped ciphertext) must be
// rejected with an error, never a panic, and the same bytes used as a
// plaintext must survive a seal/open round trip.
func FuzzOpen(f *testing.F) {
	s := NewSealer(NewKeyring())
	for _, plain := range [][]byte{
		nil,
		[]byte("hello"),
		bytes.Repeat([]byte("clusterBy=customerKey;"), 64),
	} {
		sealed, err := s.Seal(plain, Checksum(plain), SystemKey)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(sealed)
	}
	f.Add([]byte("VXB1"))
	f.Add([]byte("VXB0not-a-block"))
	f.Add(bytes.Repeat([]byte{0}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := s.Open(data); err == nil {
			// Anything Open accepts must re-seal and re-open to the same
			// plaintext.
			resealed, err := s.Seal(got, Checksum(got), SystemKey)
			if err != nil {
				t.Fatalf("re-sealing opened plaintext: %v", err)
			}
			back, err := s.Open(resealed)
			if err != nil || !bytes.Equal(back, got) {
				t.Fatalf("re-opened plaintext differs: %v", err)
			}
		}

		sealed, err := s.Seal(data, Checksum(data), SystemKey)
		if err != nil {
			t.Fatalf("sealing fuzz input: %v", err)
		}
		back, err := s.Open(sealed)
		if err != nil {
			t.Fatalf("opening sealed fuzz input: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("seal/open round trip mismatch")
		}
	})
}
