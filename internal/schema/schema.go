// Package schema implements BigQuery's data model as used by Vortex
// (§3.1, §4): tables of semi-structured rows with nested (STRUCT) and
// repeated (ARRAY) fields, a rich scalar type set (TIMESTAMP, DATE,
// NUMERIC, JSON, BYTES, ...), unenforced primary keys, partitioning and
// clustering column specifications, the `_CHANGE_TYPE` virtual column
// used for mutations (§4.2.6), and additive schema evolution (§5.4.1).
package schema

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Kind enumerates the value types supported by the engine.
type Kind int

// The supported kinds. KindStruct fields carry sub-fields; all other
// kinds are scalars.
const (
	KindInvalid Kind = iota
	KindInt64
	KindFloat64
	KindBool
	KindString
	KindBytes
	KindTimestamp // nanoseconds since the Unix epoch
	KindDate      // days since the Unix epoch
	KindNumeric   // fixed-point decimal, 1e-9 resolution (simplified NUMERIC)
	KindJSON      // canonicalized JSON document stored as text
	KindStruct
)

var kindNames = map[Kind]string{
	KindInvalid:   "INVALID",
	KindInt64:     "INTEGER",
	KindFloat64:   "FLOAT64",
	KindBool:      "BOOL",
	KindString:    "STRING",
	KindBytes:     "BYTES",
	KindTimestamp: "TIMESTAMP",
	KindDate:      "DATE",
	KindNumeric:   "NUMERIC",
	KindJSON:      "JSON",
	KindStruct:    "STRUCT",
}

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromName parses a kind name as produced by Kind.String.
func KindFromName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == strings.ToUpper(name) {
			return k, nil
		}
	}
	return KindInvalid, fmt.Errorf("schema: unknown type %q", name)
}

// Comparable reports whether values of this kind have a total order
// (required for clustering, partitioning and min/max column properties).
func (k Kind) Comparable() bool {
	switch k {
	case KindInt64, KindFloat64, KindBool, KindString, KindBytes, KindTimestamp, KindDate, KindNumeric:
		return true
	}
	return false
}

// Mode is the field cardinality, mirroring BigQuery's REQUIRED /
// NULLABLE / REPEATED field modes.
type Mode int

// Field modes.
const (
	Required Mode = iota
	Nullable
	Repeated
)

// String returns the BigQuery name of the mode.
func (m Mode) String() string {
	switch m {
	case Required:
		return "REQUIRED"
	case Nullable:
		return "NULLABLE"
	case Repeated:
		return "REPEATED"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Field describes one column (possibly nested).
type Field struct {
	Name   string   `json:"name"`
	Kind   Kind     `json:"kind"`
	Mode   Mode     `json:"mode"`
	Fields []*Field `json:"fields,omitempty"` // populated iff Kind == KindStruct
}

// Schema describes a table: its fields plus the physical-design
// annotations Vortex consumes (partitioning, clustering, primary key).
type Schema struct {
	Fields []*Field `json:"fields"`
	// PrimaryKey lists top-level scalar columns forming the unenforced
	// primary key (§4.2.6). Required for UPSERT/DELETE change types.
	PrimaryKey []string `json:"primary_key,omitempty"`
	// PartitionField names a top-level TIMESTAMP or DATE column; data is
	// partitioned by its date, as in `PARTITION BY DATE(orderTimestamp)`.
	PartitionField string `json:"partition_field,omitempty"`
	// ClusterBy lists top-level comparable columns defining the weak
	// sort order maintained by automatic reclustering (§6.1).
	ClusterBy []string `json:"cluster_by,omitempty"`
	// Version increments on every schema evolution (§5.4.1).
	Version int `json:"version"`
}

// ChangeType is the value of the `_CHANGE_TYPE` virtual column (§4.2.6).
type ChangeType int

// Change types for ingested rows.
const (
	ChangeInsert ChangeType = iota // append the row (default)
	ChangeUpsert                   // update by primary key, or insert
	ChangeDelete                   // delete all rows matching the primary key
)

// String returns the API name of the change type.
func (c ChangeType) String() string {
	switch c {
	case ChangeInsert:
		return "INSERT"
	case ChangeUpsert:
		return "UPSERT"
	case ChangeDelete:
		return "DELETE"
	}
	return fmt.Sprintf("ChangeType(%d)", int(c))
}

// Validate checks structural well-formedness: non-empty unique field
// names, struct kinds with sub-fields, scalar kinds without, and that the
// physical-design annotations reference existing, appropriate columns.
func (s *Schema) Validate() error {
	if len(s.Fields) == 0 {
		return errors.New("schema: no fields")
	}
	if err := validateFields(s.Fields, ""); err != nil {
		return err
	}
	top := s.topLevel()
	for _, pk := range s.PrimaryKey {
		f, ok := top[pk]
		if !ok {
			return fmt.Errorf("schema: primary key column %q does not exist", pk)
		}
		if !f.Kind.Comparable() || f.Mode == Repeated {
			return fmt.Errorf("schema: primary key column %q must be a non-repeated scalar", pk)
		}
	}
	if s.PartitionField != "" {
		f, ok := top[s.PartitionField]
		if !ok {
			return fmt.Errorf("schema: partition column %q does not exist", s.PartitionField)
		}
		if f.Kind != KindTimestamp && f.Kind != KindDate {
			return fmt.Errorf("schema: partition column %q must be TIMESTAMP or DATE, is %v", s.PartitionField, f.Kind)
		}
		if f.Mode == Repeated {
			return fmt.Errorf("schema: partition column %q cannot be repeated", s.PartitionField)
		}
	}
	for _, c := range s.ClusterBy {
		f, ok := top[c]
		if !ok {
			return fmt.Errorf("schema: clustering column %q does not exist", c)
		}
		if !f.Kind.Comparable() || f.Mode == Repeated {
			return fmt.Errorf("schema: clustering column %q must be a non-repeated scalar", c)
		}
	}
	return nil
}

func validateFields(fields []*Field, prefix string) error {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return fmt.Errorf("schema: empty field name under %q", prefix)
		}
		if strings.HasPrefix(f.Name, "_") && prefix == "" {
			return fmt.Errorf("schema: field %q: names starting with underscore are reserved for virtual columns", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema: duplicate field %q under %q", f.Name, prefix)
		}
		seen[f.Name] = true
		if f.Kind == KindStruct {
			if len(f.Fields) == 0 {
				return fmt.Errorf("schema: struct field %q has no sub-fields", path(prefix, f.Name))
			}
			if err := validateFields(f.Fields, path(prefix, f.Name)); err != nil {
				return err
			}
		} else {
			if len(f.Fields) != 0 {
				return fmt.Errorf("schema: scalar field %q has sub-fields", path(prefix, f.Name))
			}
			if f.Kind <= KindInvalid || f.Kind > KindJSON {
				return fmt.Errorf("schema: field %q has invalid kind %v", path(prefix, f.Name), f.Kind)
			}
		}
	}
	return nil
}

func path(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

func (s *Schema) topLevel() map[string]*Field {
	m := make(map[string]*Field, len(s.Fields))
	for _, f := range s.Fields {
		m[f.Name] = f
	}
	return m
}

// FieldIndex returns the index of the named top-level field, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the named top-level field, or nil.
func (s *Schema) Field(name string) *Field {
	if i := s.FieldIndex(name); i >= 0 {
		return s.Fields[i]
	}
	return nil
}

// Fingerprint returns a stable hash of the schema's structure (fields and
// annotations, excluding Version). Fragments record the fingerprint of
// the schema they were written under.
func (s *Schema) Fingerprint() uint64 {
	h := fnv.New64a()
	var walk func(fields []*Field)
	walk = func(fields []*Field) {
		for _, f := range fields {
			fmt.Fprintf(h, "%s/%d/%d{", f.Name, f.Kind, f.Mode)
			walk(f.Fields)
			h.Write([]byte("}"))
		}
	}
	walk(s.Fields)
	fmt.Fprintf(h, "|pk=%s|part=%s|clus=%s", strings.Join(s.PrimaryKey, ","), s.PartitionField, strings.Join(s.ClusterBy, ","))
	return h.Sum64()
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Fields:         cloneFields(s.Fields),
		PrimaryKey:     append([]string(nil), s.PrimaryKey...),
		PartitionField: s.PartitionField,
		ClusterBy:      append([]string(nil), s.ClusterBy...),
		Version:        s.Version,
	}
	return c
}

func cloneFields(fields []*Field) []*Field {
	out := make([]*Field, len(fields))
	for i, f := range fields {
		cf := *f
		cf.Fields = cloneFields(f.Fields)
		out[i] = &cf
	}
	return out
}

// AddField evolves the schema by appending a new top-level field.
// BigQuery-style evolution is additive: the new field must be NULLABLE or
// REPEATED so rows written under the old schema remain valid. Returns the
// evolved schema with an incremented version; the receiver is unchanged.
func (s *Schema) AddField(f *Field) (*Schema, error) {
	if f.Mode == Required {
		return nil, fmt.Errorf("schema: cannot add REQUIRED field %q to an existing table", f.Name)
	}
	if s.Field(f.Name) != nil {
		return nil, fmt.Errorf("schema: field %q already exists", f.Name)
	}
	c := s.Clone()
	cf := *f
	cf.Fields = cloneFields(f.Fields)
	c.Fields = append(c.Fields, &cf)
	c.Version++
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// CanReadWith reports whether rows written under old can be read with s:
// s must contain every old field unchanged, in order, as a prefix.
func (s *Schema) CanReadWith(old *Schema) bool {
	if len(old.Fields) > len(s.Fields) {
		return false
	}
	for i, f := range old.Fields {
		if !fieldsEqual(f, s.Fields[i]) {
			return false
		}
	}
	return true
}

func fieldsEqual(a, b *Field) bool {
	if a.Name != b.Name || a.Kind != b.Kind || a.Mode != b.Mode || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if !fieldsEqual(a.Fields[i], b.Fields[i]) {
			return false
		}
	}
	return true
}

// Marshal serializes the schema as JSON (the SMS stores it in Spanner).
func (s *Schema) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Schema contains only marshalable primitives.
		panic(fmt.Sprintf("schema: marshal: %v", err))
	}
	return b
}

// Unmarshal parses a schema serialized by Marshal and validates it.
func Unmarshal(data []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("schema: unmarshal: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// String renders the schema in a compact DDL-like form for logs.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	var render func(fields []*Field)
	render = func(fields []*Field) {
		for i, f := range fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteByte(' ')
			if f.Mode == Repeated {
				b.WriteString("ARRAY<")
			}
			if f.Kind == KindStruct {
				b.WriteString("STRUCT<")
				render(f.Fields)
				b.WriteByte('>')
			} else {
				b.WriteString(f.Kind.String())
			}
			if f.Mode == Repeated {
				b.WriteByte('>')
			}
		}
	}
	render(s.Fields)
	b.WriteByte(')')
	if s.PartitionField != "" {
		fmt.Fprintf(&b, " PARTITION BY DATE(%s)", s.PartitionField)
	}
	if len(s.ClusterBy) > 0 {
		fmt.Fprintf(&b, " CLUSTER BY %s", strings.Join(s.ClusterBy, ", "))
	}
	return b.String()
}

// LeafColumn is one scalar leaf of the (possibly nested) schema, with the
// Dremel repetition/definition levels the ROS format stripes by.
type LeafColumn struct {
	// Path is the dotted field path, e.g. "salesOrderLines.quantity".
	Path string
	// Kind is the scalar kind at the leaf.
	Kind Kind
	// MaxDef is the definition level when the value is fully present.
	MaxDef int
	// MaxRep is the repetition level of the innermost enclosing repeated
	// field (0 for non-repeated paths).
	MaxRep int
	// FieldIndexes locates the leaf: indexes into Fields at each level.
	FieldIndexes []int
}

// Leaves enumerates the scalar leaf columns of the schema in depth-first
// field order — the column set the ROS format stores.
func (s *Schema) Leaves() []LeafColumn {
	var out []LeafColumn
	var walk func(fields []*Field, prefix string, def, rep int, idx []int)
	walk = func(fields []*Field, prefix string, def, rep int, idx []int) {
		for i, f := range fields {
			d, r := def, rep
			switch f.Mode {
			case Nullable:
				d++
			case Repeated:
				d++
				r++
			}
			p := path(prefix, f.Name)
			childIdx := append(append([]int(nil), idx...), i)
			if f.Kind == KindStruct {
				walk(f.Fields, p, d, r, childIdx)
			} else {
				out = append(out, LeafColumn{Path: p, Kind: f.Kind, MaxDef: d, MaxRep: r, FieldIndexes: childIdx})
			}
		}
	}
	walk(s.Fields, "", 0, 0, nil)
	return out
}

// SortedTopLevelNames returns the top-level column names sorted, for
// deterministic iteration in metadata structures.
func (s *Schema) SortedTopLevelNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
