package schema

import (
	"fmt"
	"math/rand"
	"time"
)

// RandomRow generates a schema-valid row using rng. It is used by
// property tests (codec round trips) and by the workload generators; it
// exercises NULLs, empty and multi-element repeated fields, and nested
// structs.
func RandomRow(rng *rand.Rand, s *Schema) Row {
	values := make([]Value, len(s.Fields))
	for i, f := range s.Fields {
		values[i] = randomValue(rng, f, 0)
	}
	return Row{Values: values}
}

func randomValue(rng *rand.Rand, f *Field, depth int) Value {
	if f.Mode == Nullable && rng.Intn(5) == 0 {
		return Null()
	}
	if f.Mode == Repeated {
		n := rng.Intn(4) // 0..3 elements; empty lists are legal and common
		if depth > 3 {
			n = 0
		}
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomScalarOrStruct(rng, f, depth)
		}
		return List(elems...)
	}
	return randomScalarOrStruct(rng, f, depth)
}

func randomScalarOrStruct(rng *rand.Rand, f *Field, depth int) Value {
	if f.Kind == KindStruct {
		fields := make([]Value, len(f.Fields))
		for i, sub := range f.Fields {
			fields[i] = randomValue(rng, sub, depth+1)
		}
		return Struct(fields...)
	}
	return RandomScalar(rng, f.Kind)
}

// RandomScalar generates a random scalar value of the given kind.
func RandomScalar(rng *rand.Rand, k Kind) Value {
	switch k {
	case KindInt64:
		return Int64(rng.Int63n(1<<40) - 1<<39)
	case KindFloat64:
		return Float64(rng.NormFloat64() * 1000)
	case KindBool:
		return Bool(rng.Intn(2) == 1)
	case KindString:
		return String(randomString(rng))
	case KindBytes:
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return Value{kind: KindBytes, b: b}
	case KindTimestamp:
		base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		return TimestampNanos(base + rng.Int63n(int64(400*24*time.Hour)))
	case KindDate:
		return DateDays(19000 + rng.Int63n(1000))
	case KindNumeric:
		return Numeric(rng.Int63n(2_000_000_000_000) - 1_000_000_000_000)
	case KindJSON:
		v, err := JSON(fmt.Sprintf(`{"k%d": %d, "tags": ["a", "b"]}`, rng.Intn(10), rng.Intn(1000)))
		if err != nil {
			panic(err)
		}
		return v
	}
	panic(fmt.Sprintf("schema: cannot generate kind %v", k))
}

var randomWords = []string{
	"alpha", "beta", "gamma", "delta", "kirkland", "santiago",
	"stream", "vortex", "append", "fragment", "colossus", "dremel",
}

func randomString(rng *rand.Rand) string {
	n := rng.Intn(3) + 1
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += "-"
		}
		out += randomWords[rng.Intn(len(randomWords))]
	}
	return out
}
