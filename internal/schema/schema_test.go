package schema

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// SalesSchema builds the paper's Listing 1 table: nested salesOrderLines,
// partition by DATE(orderTimestamp), cluster by customerKey.
func SalesSchema() *Schema {
	return &Schema{
		Fields: []*Field{
			{Name: "orderTimestamp", Kind: KindTimestamp, Mode: Required},
			{Name: "salesOrderKey", Kind: KindString, Mode: Required},
			{Name: "customerKey", Kind: KindString, Mode: Required},
			{Name: "salesOrderLines", Kind: KindStruct, Mode: Repeated, Fields: []*Field{
				{Name: "salesOrderLineKey", Kind: KindInt64, Mode: Required},
				{Name: "dueDate", Kind: KindDate, Mode: Nullable},
				{Name: "shipDate", Kind: KindDate, Mode: Nullable},
				{Name: "quantity", Kind: KindInt64, Mode: Nullable},
				{Name: "unitPrice", Kind: KindNumeric, Mode: Nullable},
			}},
			{Name: "totalSale", Kind: KindNumeric, Mode: Nullable},
			{Name: "currencyKey", Kind: KindInt64, Mode: Nullable},
		},
		PrimaryKey:     []string{"salesOrderKey"},
		PartitionField: "orderTimestamp",
		ClusterBy:      []string{"customerKey"},
	}
}

func TestSalesSchemaValidates(t *testing.T) {
	s := SalesSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ddl := s.String()
	for _, want := range []string{"ARRAY<STRUCT<", "PARTITION BY DATE(orderTimestamp)", "CLUSTER BY customerKey"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL %q missing %q", ddl, want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    *Schema
	}{
		{"empty", &Schema{}},
		{"dup field", &Schema{Fields: []*Field{{Name: "a", Kind: KindInt64}, {Name: "a", Kind: KindString}}}},
		{"struct without subfields", &Schema{Fields: []*Field{{Name: "a", Kind: KindStruct}}}},
		{"scalar with subfields", &Schema{Fields: []*Field{{Name: "a", Kind: KindInt64, Fields: []*Field{{Name: "b", Kind: KindInt64}}}}}},
		{"reserved name", &Schema{Fields: []*Field{{Name: "_CHANGE_TYPE", Kind: KindString}}}},
		{"missing pk col", &Schema{Fields: []*Field{{Name: "a", Kind: KindInt64}}, PrimaryKey: []string{"b"}}},
		{"repeated pk", &Schema{Fields: []*Field{{Name: "a", Kind: KindInt64, Mode: Repeated}}, PrimaryKey: []string{"a"}}},
		{"partition on string", &Schema{Fields: []*Field{{Name: "a", Kind: KindString}}, PartitionField: "a"}},
		{"cluster on struct", &Schema{Fields: []*Field{
			{Name: "a", Kind: KindStruct, Fields: []*Field{{Name: "b", Kind: KindInt64}}},
		}, ClusterBy: []string{"a"}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", c.name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := SalesSchema()
	got, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != s.Fingerprint() {
		t.Fatal("fingerprint changed across marshal round trip")
	}
	if !got.CanReadWith(s) || !s.CanReadWith(got) {
		t.Fatal("round-tripped schema is not read-compatible with the original")
	}
}

func TestAddFieldEvolution(t *testing.T) {
	s := SalesSchema()
	s2, err := s.AddField(&Field{Name: "discountCode", Kind: KindString, Mode: Nullable})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != s.Version+1 {
		t.Fatalf("version = %d, want %d", s2.Version, s.Version+1)
	}
	if !s2.CanReadWith(s) {
		t.Fatal("evolved schema must read rows written under the old schema")
	}
	if s2.CanReadWith(s2) != true {
		t.Fatal("schema must read its own rows")
	}
	if s.Field("discountCode") != nil {
		t.Fatal("AddField mutated the receiver")
	}
	if _, err := s.AddField(&Field{Name: "mandatory", Kind: KindInt64, Mode: Required}); err == nil {
		t.Fatal("adding a REQUIRED field must fail")
	}
	if _, err := s.AddField(&Field{Name: "customerKey", Kind: KindString, Mode: Nullable}); err == nil {
		t.Fatal("adding a duplicate field must fail")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s := SalesSchema()
	s2 := s.Clone()
	s2.ClusterBy = []string{"salesOrderKey"}
	if s.Fingerprint() == s2.Fingerprint() {
		t.Fatal("fingerprint ignores clustering change")
	}
	s3 := s.Clone()
	s3.Fields[0].Name = "ts"
	s3.PartitionField = "ts"
	if s.Fingerprint() == s3.Fingerprint() {
		t.Fatal("fingerprint ignores field rename")
	}
	s4 := s.Clone()
	s4.Version = 99
	if s.Fingerprint() != s4.Fingerprint() {
		t.Fatal("fingerprint must not include Version")
	}
}

func TestLeavesRepDefLevels(t *testing.T) {
	s := SalesSchema()
	leaves := s.Leaves()
	byPath := map[string]LeafColumn{}
	for _, l := range leaves {
		byPath[l.Path] = l
	}
	// Required top-level scalar: def 0, rep 0.
	if l := byPath["orderTimestamp"]; l.MaxDef != 0 || l.MaxRep != 0 {
		t.Fatalf("orderTimestamp levels = %+v", l)
	}
	// Nullable top-level scalar: def 1.
	if l := byPath["totalSale"]; l.MaxDef != 1 || l.MaxRep != 0 {
		t.Fatalf("totalSale levels = %+v", l)
	}
	// Required leaf under a repeated struct: def 1 (the repetition), rep 1.
	if l := byPath["salesOrderLines.salesOrderLineKey"]; l.MaxDef != 1 || l.MaxRep != 1 {
		t.Fatalf("salesOrderLineKey levels = %+v", l)
	}
	// Nullable leaf under a repeated struct: def 2, rep 1.
	if l := byPath["salesOrderLines.quantity"]; l.MaxDef != 2 || l.MaxRep != 1 {
		t.Fatalf("quantity levels = %+v", l)
	}
	if len(leaves) != 10 {
		t.Fatalf("Sales schema has %d leaves, want 10", len(leaves))
	}
}

func TestLeavesDeeplyNested(t *testing.T) {
	s := &Schema{Fields: []*Field{
		{Name: "a", Kind: KindStruct, Mode: Repeated, Fields: []*Field{
			{Name: "b", Kind: KindStruct, Mode: Repeated, Fields: []*Field{
				{Name: "c", Kind: KindInt64, Mode: Nullable},
			}},
		}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := s.Leaves()
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	l := leaves[0]
	if l.Path != "a.b.c" || l.MaxRep != 2 || l.MaxDef != 3 {
		t.Fatalf("a.b.c levels = %+v, want rep 2 def 3", l)
	}
}

func TestValidateRowAndEvolutionArity(t *testing.T) {
	s := SalesSchema()
	now := time.Date(2023, 10, 1, 12, 0, 0, 0, time.UTC)
	row := NewRow(
		Timestamp(now),
		String("SO-1"),
		String("ACME"),
		List(Struct(Int64(1), Null(), Null(), Int64(3), Numeric(5*NumericScale))),
		Numeric(15*NumericScale),
		Int64(840),
	)
	if err := s.ValidateRow(row); err != nil {
		t.Fatal(err)
	}

	// Wrong kind.
	bad := row.Clone()
	bad.Values[1] = Int64(7)
	if err := s.ValidateRow(bad); err == nil {
		t.Fatal("accepted wrong kind for salesOrderKey")
	}
	// NULL in REQUIRED.
	bad = row.Clone()
	bad.Values[0] = Null()
	if err := s.ValidateRow(bad); err == nil {
		t.Fatal("accepted NULL orderTimestamp")
	}
	// Non-list for REPEATED.
	bad = row.Clone()
	bad.Values[3] = Int64(1)
	if err := s.ValidateRow(bad); err == nil {
		t.Fatal("accepted scalar for repeated field")
	}
	// Too many values.
	bad = row.Clone()
	bad.Values = append(bad.Values, Int64(1))
	if err := s.ValidateRow(bad); err == nil {
		t.Fatal("accepted row with extra values")
	}
	// Short row (old-schema row read under evolved schema) is fine when
	// the missing tail is not REQUIRED.
	s2, err := s.AddField(&Field{Name: "note", Kind: KindString, Mode: Nullable})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ValidateRow(row); err != nil {
		t.Fatalf("evolved schema rejected old row: %v", err)
	}
	// UPSERT without a primary key on the table fails.
	noPK := s.Clone()
	noPK.PrimaryKey = nil
	if err := noPK.ValidateRow(row.WithChange(ChangeUpsert)); err == nil {
		t.Fatal("UPSERT accepted without a primary key")
	}
}

func TestPrimaryKeyAndPartition(t *testing.T) {
	s := SalesSchema()
	ts := time.Date(2023, 10, 2, 23, 59, 0, 0, time.UTC)
	row := NewRow(Timestamp(ts), String("SO-9"), String("Jerry"), List(), Null(), Null())
	pk, err := s.PrimaryKeyOf(row)
	if err != nil {
		t.Fatal(err)
	}
	if pk != `"SO-9"` {
		t.Fatalf("pk = %q", pk)
	}
	days, ok := s.PartitionOf(row)
	if !ok {
		t.Fatal("expected a partition")
	}
	wantDays := ts.Unix() / 86400
	if days != wantDays {
		t.Fatalf("partition days = %d, want %d", days, wantDays)
	}
	ck := s.ClusterKeyOf(row)
	if len(ck) != 1 || ck[0].AsString() != "Jerry" {
		t.Fatalf("cluster key = %v", ck)
	}
}

func TestRandomRowsAlwaysValidate(t *testing.T) {
	s := SalesSchema()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		r := RandomRow(rng, s)
		if err := s.ValidateRow(r); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !r.Values[0].Equal(r.Values[0]) {
			t.Fatal("Equal not reflexive")
		}
	}
}
