package schema

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNumericFromString(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1", NumericScale, true},
		{"-1", -NumericScale, true},
		{"123.456", 123*NumericScale + 456_000_000, true},
		{"-0.5", -NumericScale / 2, true},
		{".25", NumericScale / 4, true},
		{"99.999999999", 99*NumericScale + 999_999_999, true},
		{"1.0000000001", 0, false}, // beyond 1e-9 resolution
		{"abc", 0, false},
		{"", 0, false},
		{".", 0, false},
	}
	for _, c := range cases {
		v, err := NumericFromString(c.in)
		if c.ok != (err == nil) {
			t.Errorf("NumericFromString(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && v.AsNumericScaled() != c.want {
			t.Errorf("NumericFromString(%q) = %d, want %d", c.in, v.AsNumericScaled(), c.want)
		}
	}
}

func TestNumericStringRoundTrip(t *testing.T) {
	f := func(scaled int64) bool {
		v := Numeric(scaled % (1_000_000 * NumericScale))
		back, err := NumericFromString(v.String())
		return err == nil && back.AsNumericScaled() == v.AsNumericScaled()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJSONCanonicalization(t *testing.T) {
	a, err := JSON(`{"b": 1,   "a": [1, 2]}`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(`{"a":[1,2],"b":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("equivalent JSON documents compare unequal: %s vs %s", a, b)
	}
	if _, err := JSON(`{not json`); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

func TestCompareOrderings(t *testing.T) {
	if Int64(1).Compare(Int64(2)) != -1 || Int64(2).Compare(Int64(1)) != 1 || Int64(2).Compare(Int64(2)) != 0 {
		t.Fatal("int ordering broken")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Fatal("string ordering broken")
	}
	if Null().Compare(Int64(-1<<62)) != -1 {
		t.Fatal("NULL must sort before all values")
	}
	if Null().Compare(Null()) != 0 {
		t.Fatal("NULL == NULL under Compare")
	}
	if Bytes([]byte{1}).Compare(Bytes([]byte{1, 0})) != -1 {
		t.Fatal("bytes prefix ordering broken")
	}
	now := time.Now()
	if Timestamp(now).Compare(Timestamp(now.Add(time.Nanosecond))) != -1 {
		t.Fatal("timestamp ordering broken")
	}
}

func TestComparePanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare across kinds did not panic")
		}
	}()
	Int64(1).Compare(String("1"))
}

func TestEqualSemantics(t *testing.T) {
	if !Float64(math.NaN()).Equal(Float64(math.NaN())) {
		t.Fatal("NaN should equal NaN for storage round-trip purposes")
	}
	if Float64(0).Equal(Int64(0)) {
		t.Fatal("different kinds must not be equal")
	}
	if !List(Int64(1), Int64(2)).Equal(List(Int64(1), Int64(2))) {
		t.Fatal("list equality broken")
	}
	if List(Int64(1)).Equal(List(Int64(1), Int64(2))) {
		t.Fatal("lists of different lengths equal")
	}
	if !Struct(Int64(1), Null()).Equal(Struct(Int64(1), Null())) {
		t.Fatal("struct equality broken")
	}
	if Null().Equal(Int64(0)) {
		t.Fatal("NULL equals 0")
	}
}

func TestBytesValueIsCopied(t *testing.T) {
	buf := []byte{1, 2, 3}
	v := Bytes(buf)
	buf[0] = 99
	if v.AsBytes()[0] != 1 {
		t.Fatal("Bytes constructor aliased the caller's slice")
	}
	out := v.AsBytes()
	out[1] = 98
	if v.AsBytes()[1] != 2 {
		t.Fatal("AsBytes leaked the internal slice")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int64(-5), "-5"},
		{Bool(true), "true"},
		{String("hi"), `"hi"`},
		{Numeric(1_500_000_000), "1.5"},
		{Numeric(-2_500_000_000), "-2.5"},
		{DateDays(19631), "2023-10-01"},
		{List(Int64(1), Int64(2)), "[1, 2]"},
		{Struct(Int64(1), String("x")), `{1, "x"}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDateFromTimeHandlesPreEpoch(t *testing.T) {
	d := Date(time.Date(1969, 12, 31, 23, 0, 0, 0, time.UTC))
	if d.AsDateDays() != -1 {
		t.Fatalf("1969-12-31 = day %d, want -1", d.AsDateDays())
	}
	d = Date(time.Date(1970, 1, 1, 1, 0, 0, 0, time.UTC))
	if d.AsDateDays() != 0 {
		t.Fatalf("1970-01-01 = day %d, want 0", d.AsDateDays())
	}
}

func TestCompareClusterKeys(t *testing.T) {
	a := []Value{String("Alice"), Int64(1)}
	b := []Value{String("Alice"), Int64(2)}
	c := []Value{String("Bob")}
	if CompareClusterKeys(a, b) != -1 {
		t.Fatal("tuple ordering broken on second element")
	}
	if CompareClusterKeys(a, c) != -1 {
		t.Fatal("tuple ordering broken on first element")
	}
	if CompareClusterKeys(a, a) != 0 {
		t.Fatal("tuple not equal to itself")
	}
	if CompareClusterKeys(c, []Value{String("Bob"), Int64(0)}) >= 0 {
		t.Fatal("shorter tuple must sort first on equal prefix")
	}
}
