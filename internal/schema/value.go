package schema

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// NumericScale is the fixed-point scale of KindNumeric values: NUMERIC is
// stored as an int64 count of 1e-9 units (a simplification of BigQuery's
// 38-digit NUMERIC that preserves its fixed-point comparison semantics).
const NumericScale = 1_000_000_000

// Value is one (possibly nested, possibly repeated) datum. The zero Value
// is NULL. Values are immutable by convention: accessors return copies of
// mutable internals where aliasing would be observable.
type Value struct {
	kind   Kind
	null   bool
	i      int64   // Int64, Bool(0/1), Timestamp(ns), Date(days), Numeric(1e-9)
	f      float64 // Float64
	s      string  // String, JSON
	b      []byte  // Bytes
	list   []Value // Repeated elements (kind is the element kind)
	fields []Value // Struct field values, parallel to Field.Fields
	rep    bool    // true if this Value is a repeated list
}

// Null returns a NULL value (assignable to any nullable field).
func Null() Value { return Value{null: true} }

// Int64 returns an INTEGER value.
func Int64(v int64) Value { return Value{kind: KindInt64, i: v} }

// Float64 returns a FLOAT64 value.
func Float64(v float64) Value { return Value{kind: KindFloat64, f: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// String returns a STRING value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a BYTES value (the slice is copied).
func Bytes(v []byte) Value { return Value{kind: KindBytes, b: append([]byte(nil), v...)} }

// Timestamp returns a TIMESTAMP value.
func Timestamp(t time.Time) Value { return Value{kind: KindTimestamp, i: t.UnixNano()} }

// TimestampNanos returns a TIMESTAMP value from epoch nanoseconds.
func TimestampNanos(ns int64) Value { return Value{kind: KindTimestamp, i: ns} }

// Date returns a DATE value from a time (its UTC calendar date).
func Date(t time.Time) Value {
	u := t.UTC()
	days := u.Unix() / 86400
	if u.Unix() < 0 && u.Unix()%86400 != 0 {
		days--
	}
	return Value{kind: KindDate, i: days}
}

// DateDays returns a DATE value from days since the Unix epoch.
func DateDays(days int64) Value { return Value{kind: KindDate, i: days} }

// Numeric returns a NUMERIC value from a scaled integer (1e-9 units).
func Numeric(scaled int64) Value { return Value{kind: KindNumeric, i: scaled} }

// NumericFromString parses a decimal literal like "123.456" into NUMERIC.
func NumericFromString(s string) (Value, error) {
	neg := false
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	}
	intPart, fracPart := t, ""
	if dot := strings.IndexByte(t, '.'); dot >= 0 {
		intPart, fracPart = t[:dot], t[dot+1:]
	}
	if intPart == "" && fracPart == "" {
		return Value{}, fmt.Errorf("schema: invalid NUMERIC %q", s)
	}
	if intPart == "" {
		intPart = "0"
	}
	ip, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("schema: invalid NUMERIC %q: %w", s, err)
	}
	if len(fracPart) > 9 {
		return Value{}, fmt.Errorf("schema: NUMERIC %q exceeds 1e-9 resolution", s)
	}
	fp := int64(0)
	if fracPart != "" {
		fp, err = strconv.ParseInt(fracPart+strings.Repeat("0", 9-len(fracPart)), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: invalid NUMERIC %q: %w", s, err)
		}
	}
	scaled := ip*NumericScale + fp
	if neg {
		scaled = -scaled
	}
	return Numeric(scaled), nil
}

// JSON returns a JSON value, canonicalizing the document. It returns an
// error if doc is not valid JSON.
func JSON(doc string) (Value, error) {
	var any interface{}
	if err := json.Unmarshal([]byte(doc), &any); err != nil {
		return Value{}, fmt.Errorf("schema: invalid JSON: %w", err)
	}
	canon, err := json.Marshal(any)
	if err != nil {
		return Value{}, fmt.Errorf("schema: canonicalize JSON: %w", err)
	}
	return Value{kind: KindJSON, s: string(canon)}, nil
}

// RawJSON returns a JSON value without re-canonicalizing doc. It is for
// decoders reading documents that were canonicalized by JSON when first
// constructed; arbitrary user input must go through JSON instead.
func RawJSON(doc string) Value { return Value{kind: KindJSON, s: doc} }

// Struct returns a STRUCT value with the given field values (parallel to
// the schema's Field.Fields).
func Struct(fieldValues ...Value) Value {
	return Value{kind: KindStruct, fields: fieldValues}
}

// List returns a REPEATED value holding the given elements.
func List(elems ...Value) Value {
	return Value{rep: true, list: elems}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// IsList reports whether the value is a repeated list.
func (v Value) IsList() bool { return v.rep }

// Kind returns the value's kind (KindInvalid for NULL and lists).
func (v Value) Kind() Kind { return v.kind }

// AsInt64 returns the INTEGER payload.
func (v Value) AsInt64() int64 { return v.i }

// AsFloat64 returns the FLOAT64 payload; INTEGER and NUMERIC values are
// widened.
func (v Value) AsFloat64() float64 {
	switch v.kind {
	case KindFloat64:
		return v.f
	case KindNumeric:
		return float64(v.i) / NumericScale
	default:
		return float64(v.i)
	}
}

// AsBool returns the BOOL payload.
func (v Value) AsBool() bool { return v.i != 0 }

// AsString returns the STRING or JSON payload.
func (v Value) AsString() string { return v.s }

// AsBytes returns a copy of the BYTES payload.
func (v Value) AsBytes() []byte { return append([]byte(nil), v.b...) }

// AsTime returns the TIMESTAMP payload as a time.Time (UTC).
func (v Value) AsTime() time.Time { return time.Unix(0, v.i).UTC() }

// AsDateDays returns the DATE payload as days since the epoch.
func (v Value) AsDateDays() int64 { return v.i }

// AsNumericScaled returns the NUMERIC payload in 1e-9 units.
func (v Value) AsNumericScaled() int64 { return v.i }

// Len returns the number of elements of a repeated value, or the number
// of fields of a struct value.
func (v Value) Len() int {
	if v.rep {
		return len(v.list)
	}
	return len(v.fields)
}

// Index returns element i of a repeated value.
func (v Value) Index(i int) Value { return v.list[i] }

// FieldValue returns field i of a struct value.
func (v Value) FieldValue(i int) Value { return v.fields[i] }

// Elements returns a copy of the element slice of a repeated value.
func (v Value) Elements() []Value { return append([]Value(nil), v.list...) }

// Equal reports deep equality, including kind.
func (v Value) Equal(o Value) bool {
	if v.null || o.null {
		return v.null == o.null
	}
	if v.rep != o.rep {
		return false
	}
	if v.rep {
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat64:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString, KindJSON:
		return v.s == o.s
	case KindBytes:
		return bytes.Equal(v.b, o.b)
	case KindStruct:
		if len(v.fields) != len(o.fields) {
			return false
		}
		for i := range v.fields {
			if !v.fields[i].Equal(o.fields[i]) {
				return false
			}
		}
		return true
	default:
		return v.i == o.i
	}
}

// Compare orders two scalar values of the same comparable kind:
// -1, 0 or +1. NULL sorts before every non-NULL value. Compare panics on
// kind mismatch or non-comparable kinds — callers validate first.
func (v Value) Compare(o Value) int {
	if v.null || o.null {
		switch {
		case v.null && o.null:
			return 0
		case v.null:
			return -1
		default:
			return 1
		}
	}
	if v.kind != o.kind {
		panic(fmt.Sprintf("schema: comparing %v with %v", v.kind, o.kind))
	}
	switch v.kind {
	case KindInt64, KindBool, KindTimestamp, KindDate, KindNumeric:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindFloat64:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindString, KindJSON:
		return strings.Compare(v.s, o.s)
	case KindBytes:
		return bytes.Compare(v.b, o.b)
	}
	panic(fmt.Sprintf("schema: kind %v is not comparable", v.kind))
}

// String renders the value for logs and query output.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	if v.rep {
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	switch v.kind {
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return strconv.Quote(v.s)
	case KindJSON:
		return v.s
	case KindBytes:
		return fmt.Sprintf("b%q", v.b)
	case KindTimestamp:
		return v.AsTime().Format(time.RFC3339Nano)
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	case KindNumeric:
		whole, frac := v.i/NumericScale, v.i%NumericScale
		if frac == 0 {
			return strconv.FormatInt(whole, 10)
		}
		neg := ""
		if v.i < 0 {
			neg = "-"
			whole, frac = -whole, -frac
		}
		return fmt.Sprintf("%s%d.%s", neg, whole, strings.TrimRight(fmt.Sprintf("%09d", frac), "0"))
	case KindStruct:
		parts := make([]string, len(v.fields))
		for i, f := range v.fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "INVALID"
}

// Key renders the value as a canonical lookup key for bloom-filter
// membership: raw bytes for strings, String() for everything else. Using
// one convention on both the write path (fragment/ROS blooms) and the
// read path (partition elimination probes) is what makes the
// no-false-negative guarantee hold end to end.
func (v Value) Key() string {
	switch v.kind {
	case KindString, KindJSON:
		return v.s
	case KindBytes:
		return string(v.b)
	default:
		return v.String()
	}
}

// Row is one table row: top-level values parallel to Schema.Fields, plus
// the `_CHANGE_TYPE` virtual column.
type Row struct {
	Values []Value
	Change ChangeType
}

// NewRow builds an INSERT row from values.
func NewRow(values ...Value) Row { return Row{Values: values} }

// WithChange returns a copy of the row with the given change type.
func (r Row) WithChange(c ChangeType) Row {
	r.Change = c
	return r
}

// Clone returns a deep-enough copy (Values share immutable internals).
func (r Row) Clone() Row {
	return Row{Values: append([]Value(nil), r.Values...), Change: r.Change}
}

// ValidateRow checks that the row conforms to the schema: arity, field
// kinds, modes (REQUIRED non-null, REPEATED lists), recursively. For
// schema evolution, rows may have fewer values than the schema has fields
// (trailing added fields read as NULL) but never more.
func (s *Schema) ValidateRow(r Row) error {
	if len(r.Values) > len(s.Fields) {
		return fmt.Errorf("schema: row has %d values, schema has %d fields", len(r.Values), len(s.Fields))
	}
	for i, v := range r.Values {
		if err := validateValue(s.Fields[i], v); err != nil {
			return err
		}
	}
	// Fields beyond the row's arity must tolerate NULL.
	for i := len(r.Values); i < len(s.Fields); i++ {
		if s.Fields[i].Mode == Required {
			return fmt.Errorf("schema: row missing REQUIRED field %q", s.Fields[i].Name)
		}
	}
	if r.Change != ChangeInsert && len(s.PrimaryKey) == 0 {
		return fmt.Errorf("schema: %v rows require a primary key on the table", r.Change)
	}
	return nil
}

func validateValue(f *Field, v Value) error {
	if v.IsNull() {
		if f.Mode == Required {
			return fmt.Errorf("schema: field %q is REQUIRED but value is NULL", f.Name)
		}
		return nil
	}
	if f.Mode == Repeated {
		if !v.IsList() {
			return fmt.Errorf("schema: field %q is REPEATED but value is %v", f.Name, v.Kind())
		}
		for i := 0; i < v.Len(); i++ {
			e := v.Index(i)
			if e.IsNull() {
				return fmt.Errorf("schema: field %q: repeated elements cannot be NULL", f.Name)
			}
			if err := validateScalarOrStruct(f, e); err != nil {
				return err
			}
		}
		return nil
	}
	if v.IsList() {
		return fmt.Errorf("schema: field %q is not REPEATED but value is a list", f.Name)
	}
	return validateScalarOrStruct(f, v)
}

func validateScalarOrStruct(f *Field, v Value) error {
	if v.Kind() != f.Kind {
		return fmt.Errorf("schema: field %q expects %v, got %v", f.Name, f.Kind, v.Kind())
	}
	if f.Kind == KindStruct {
		if v.Len() > len(f.Fields) {
			return fmt.Errorf("schema: struct %q has %d values for %d fields", f.Name, v.Len(), len(f.Fields))
		}
		for i := 0; i < v.Len(); i++ {
			if err := validateValue(f.Fields[i], v.FieldValue(i)); err != nil {
				return err
			}
		}
		for i := v.Len(); i < len(f.Fields); i++ {
			if f.Fields[i].Mode == Required {
				return fmt.Errorf("schema: struct %q missing REQUIRED field %q", f.Name, f.Fields[i].Name)
			}
		}
	}
	return nil
}

// PrimaryKeyOf extracts the row's primary key as a canonical string.
// It returns an error if any key column is NULL or missing.
func (s *Schema) PrimaryKeyOf(r Row) (string, error) {
	if len(s.PrimaryKey) == 0 {
		return "", fmt.Errorf("schema: table has no primary key")
	}
	var b strings.Builder
	for n, col := range s.PrimaryKey {
		i := s.FieldIndex(col)
		if i < 0 || i >= len(r.Values) || r.Values[i].IsNull() {
			return "", fmt.Errorf("schema: primary key column %q is NULL or missing", col)
		}
		if n > 0 {
			b.WriteByte(0)
		}
		b.WriteString(r.Values[i].String())
	}
	return b.String(), nil
}

// PartitionOf returns the row's partition id — the calendar date of the
// partition column as days since epoch — or (0, false) for unpartitioned
// tables or NULL partition values.
func (s *Schema) PartitionOf(r Row) (int64, bool) {
	if s.PartitionField == "" {
		return 0, false
	}
	i := s.FieldIndex(s.PartitionField)
	if i < 0 || i >= len(r.Values) {
		return 0, false
	}
	v := r.Values[i]
	if v.IsNull() {
		return 0, false
	}
	switch v.Kind() {
	case KindDate:
		return v.AsDateDays(), true
	case KindTimestamp:
		ns := v.AsInt64()
		days := ns / (86400 * int64(time.Second))
		if ns < 0 && ns%(86400*int64(time.Second)) != 0 {
			days--
		}
		return days, true
	}
	return 0, false
}

// ClusterKeyOf extracts the row's clustering key values (NULLs allowed),
// one per ClusterBy column, for range bookkeeping.
func (s *Schema) ClusterKeyOf(r Row) []Value {
	out := make([]Value, len(s.ClusterBy))
	for n, col := range s.ClusterBy {
		i := s.FieldIndex(col)
		if i >= 0 && i < len(r.Values) {
			out[n] = r.Values[i]
		} else {
			out[n] = Null()
		}
	}
	return out
}

// CompareClusterKeys orders two clustering key tuples lexicographically.
func CompareClusterKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}
