package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The TCP transport moves every message inside a length-prefixed,
// CRC32C-protected frame — the same integrity idiom the storage wire
// format (internal/wire) uses for record batches. The 16-byte header is:
//
//	offset 0  : magic 'V'
//	offset 1  : magic 'X'
//	offset 2  : protocol version (1)
//	offset 3  : frame type
//	offset 4  : stream/call id, uint32 big-endian
//	offset 8  : payload length, uint32 big-endian
//	offset 12 : CRC32C (Castagnoli) of the payload, uint32 big-endian
//
// A corrupt header or a payload failing its checksum poisons the whole
// connection: framing is lost, so the reader tears the connection down
// and every in-flight call on it fails with ErrDropped.
const (
	frameMagic0    = 'V'
	frameMagic1    = 'X'
	frameVersion   = 1
	frameHeaderLen = 16

	// maxFramePayload bounds a single frame. It is deliberately far above
	// any message the engine produces (fragments rotate at tens of MB)
	// while still rejecting absurd lengths from corrupt or hostile peers
	// before any allocation happens.
	maxFramePayload = 256 << 20
)

// frameType discriminates the multiplexed traffic on one connection.
type frameType uint8

const (
	ftUnaryReq     frameType = 1  // client→server: one unary call
	ftUnaryResp    frameType = 2  // server→client: its response
	ftUnaryCancel  frameType = 3  // client→server: caller's context ended
	ftStreamOpen   frameType = 4  // client→server: open a bi-di stream
	ftStreamAccept frameType = 5  // server→client: open outcome
	ftStreamMsg    frameType = 6  // client→server: stream data message
	ftStreamResp   frameType = 7  // server→client: stream data message
	ftWindow       frameType = 8  // either way: return flow-control credit
	ftCloseSend    frameType = 9  // client→server: no more requests
	ftReset        frameType = 10 // client→server: abort the stream
	ftHandlerDone  frameType = 11 // server→client: handler returned
)

var errBadFrame = errors.New("rpc: malformed frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded unit of the TCP protocol.
type frame struct {
	typ     frameType
	id      uint32
	payload []byte
}

// appendFrame encodes one frame onto dst and returns the extended slice.
func appendFrame(dst []byte, typ frameType, id uint32, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = frameMagic0
	hdr[1] = frameMagic1
	hdr[2] = frameVersion
	hdr[3] = byte(typ)
	binary.BigEndian.PutUint32(hdr[4:8], id)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrameHeader validates a 16-byte header and returns the frame type,
// id, payload length and expected payload CRC.
func parseFrameHeader(hdr []byte) (frameType, uint32, uint32, uint32, error) {
	if len(hdr) < frameHeaderLen {
		return 0, 0, 0, 0, fmt.Errorf("%w: short header (%d bytes)", errBadFrame, len(hdr))
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad magic %02x%02x", errBadFrame, hdr[0], hdr[1])
	}
	if hdr[2] != frameVersion {
		return 0, 0, 0, 0, fmt.Errorf("%w: unsupported version %d", errBadFrame, hdr[2])
	}
	typ := frameType(hdr[3])
	if typ < ftUnaryReq || typ > ftHandlerDone {
		return 0, 0, 0, 0, fmt.Errorf("%w: unknown frame type %d", errBadFrame, typ)
	}
	id := binary.BigEndian.Uint32(hdr[4:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxFramePayload {
		return 0, 0, 0, 0, fmt.Errorf("%w: payload length %d exceeds limit", errBadFrame, length)
	}
	crc := binary.BigEndian.Uint32(hdr[12:16])
	return typ, id, length, crc, nil
}

// decodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. It is the pure-function core the
// connection reader and the fuzz target share: every validation the wire
// path performs happens here.
func decodeFrame(b []byte) (frame, int, error) {
	typ, id, length, crc, err := parseFrameHeader(b)
	if err != nil {
		return frame{}, 0, err
	}
	total := frameHeaderLen + int(length)
	if len(b) < total {
		return frame{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", errBadFrame, len(b)-frameHeaderLen, length)
	}
	payload := b[frameHeaderLen:total]
	if crc32.Checksum(payload, crcTable) != crc {
		return frame{}, 0, fmt.Errorf("%w: payload checksum mismatch", errBadFrame)
	}
	return frame{typ: typ, id: id, payload: payload}, total, nil
}

// readFrame reads and validates one frame from r. An io error mid-frame
// (including EOF after a partial header or payload) is returned as-is so
// the connection owner can map it onto the transport error contract.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	typ, id, length, crc, err := parseFrameHeader(hdr[:])
	if err != nil {
		return frame{}, err
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, fmt.Errorf("%w: partial frame: %v", errBadFrame, err)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return frame{}, fmt.Errorf("%w: payload checksum mismatch", errBadFrame)
	}
	return frame{typ: typ, id: id, payload: payload}, nil
}
