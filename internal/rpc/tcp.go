package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport is the real-socket Transport: logical server addresses
// (the same "sms-0" / "ss-alpha-1" strings the in-memory transport uses)
// are routed to host:port endpoints, and all traffic to one endpoint is
// multiplexed over a single persistent connection carrying CRC32C-framed
// gob messages (frame.go). Semantics match *Network exactly — the
// conformance suite holds both to the same contract:
//
//   - unary calls are request/response pairs correlated by call id;
//   - streams carry per-direction byte flow control: a sender blocks
//     while the window is full of un-received bytes, and the receiver
//     returns credit with window frames as the application Recvs;
//   - context cancellation crosses the wire as a reset frame;
//   - a failed dial or missing route maps to ErrUnreachable (the target
//     never saw the request — rotate away), while any failure of an
//     established connection maps to ErrDropped (the target may have
//     acted — retry the same target first).
//
// Servers registered locally are dispatched through an embedded
// in-memory Network without touching a socket, so one process can host
// its own tasks and call remote ones through the same Transport value.
type TCPTransport struct {
	local *Network

	mu           sync.Mutex
	routes       map[string]string // logical addr -> host:port
	defaultRoute string
	conns        map[string]*tcpConn // dialed, by host:port
	accepted     map[*tcpConn]struct{}
	ln           net.Listener
	closed       bool

	dialTimeout time.Duration

	ctx    context.Context
	cancel context.CancelFunc
}

// NewTCPTransport returns a TCP transport with no routes and no
// listener. Call Listen to serve locally-registered servers to peers,
// AddRoute/SetDefaultRoute to reach remote ones.
func NewTCPTransport() *TCPTransport {
	ctx, cancel := context.WithCancel(context.Background())
	return &TCPTransport{
		local:       NewNetwork(nil),
		routes:      make(map[string]string),
		conns:       make(map[string]*tcpConn),
		accepted:    make(map[*tcpConn]struct{}),
		dialTimeout: 3 * time.Second,
		ctx:         ctx,
		cancel:      cancel,
	}
}

// SetDialTimeout overrides the per-connection dial timeout.
func (t *TCPTransport) SetDialTimeout(d time.Duration) {
	t.mu.Lock()
	t.dialTimeout = d
	t.mu.Unlock()
}

// Listen binds hostport (e.g. "127.0.0.1:0") and starts serving
// locally-registered servers to peers. It returns the bound address.
func (t *TCPTransport) Listen(hostport string) (string, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: transport closed")
	}
	if t.ln != nil {
		t.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: transport already listening")
	}
	t.ln = ln
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// ListenAddr returns the bound listen address ("" before Listen).
func (t *TCPTransport) ListenAddr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

func (t *TCPTransport) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := newTCPConn(t, nc, "")
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			nc.Close()
			return
		}
		t.accepted[c] = struct{}{}
		t.mu.Unlock()
		go c.readLoop()
	}
}

// AddRoute maps a logical server address to a peer's host:port.
func (t *TCPTransport) AddRoute(logical, hostport string) {
	t.mu.Lock()
	t.routes[logical] = hostport
	t.mu.Unlock()
}

// AddRoutes maps a batch of logical addresses at once.
func (t *TCPTransport) AddRoutes(routes map[string]string) {
	t.mu.Lock()
	for logical, hostport := range routes {
		t.routes[logical] = hostport
	}
	t.mu.Unlock()
}

// SetDefaultRoute sends logical addresses with no explicit route to
// hostport ("" disables the fallback).
func (t *TCPTransport) SetDefaultRoute(hostport string) {
	t.mu.Lock()
	t.defaultRoute = hostport
	t.mu.Unlock()
}

// Close tears down the listener and every connection. In-flight calls
// fail with ErrDropped.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	conns := make([]*tcpConn, 0, len(t.conns)+len(t.accepted))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.accepted {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.fail(fmt.Errorf("%w: transport closed", ErrDropped))
	}
	return nil
}

// AbortConnections hard-closes every established connection without any
// protocol goodbye — the test hook standing in for a mid-call TCP reset.
// Subsequent calls dial fresh connections.
func (t *TCPTransport) AbortConnections() {
	t.mu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns)+len(t.accepted))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.accepted {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		if tc, ok := c.nc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.nc.Close()
	}
}

// Register attaches a server at the logical address addr; peers reach it
// through this transport's listener, local callers bypass the socket.
func (t *TCPTransport) Register(addr string, s *Server) { t.local.Register(addr, s) }

// Deregister removes the server at addr.
func (t *TCPTransport) Deregister(addr string) { t.local.Deregister(addr) }

func (t *TCPTransport) resolve(addr string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", fmt.Errorf("%w: transport closed", ErrUnreachable)
	}
	if hp, ok := t.routes[addr]; ok {
		return hp, nil
	}
	if t.defaultRoute != "" {
		return t.defaultRoute, nil
	}
	return "", fmt.Errorf("%w: no route to %s", ErrUnreachable, addr)
}

// connFor returns a live connection to the peer hosting addr, dialing if
// needed. Dial failures map to ErrUnreachable: the peer never saw
// anything, so the caller should rotate away.
func (t *TCPTransport) connFor(ctx context.Context, addr string) (*tcpConn, error) {
	hostport, err := t.resolve(addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if c := t.conns[hostport]; c != nil && !c.isDead() {
		t.mu.Unlock()
		return c, nil
	}
	timeout := t.dialTimeout
	t.mu.Unlock()
	d := net.Dialer{Timeout: timeout}
	nc, err := d.DialContext(ctx, "tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, hostport, err)
	}
	c := newTCPConn(t, nc, hostport)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return nil, fmt.Errorf("%w: transport closed", ErrUnreachable)
	}
	if existing := t.conns[hostport]; existing != nil && !existing.isDead() {
		// Lost a dial race; use the established connection.
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[hostport] = c
	t.mu.Unlock()
	go c.readLoop()
	return c, nil
}

func (t *TCPTransport) removeConn(c *tcpConn) {
	t.mu.Lock()
	if c.hostport != "" && t.conns[c.hostport] == c {
		delete(t.conns, c.hostport)
	}
	delete(t.accepted, c)
	t.mu.Unlock()
}

// Unary performs one request/response call, dispatching locally-hosted
// addresses in process and everything else over the wire.
func (t *TCPTransport) Unary(ctx context.Context, addr, method string, req any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if t.local.has(addr) {
		return t.local.Unary(ctx, addr, method, req)
	}
	c, err := t.connFor(ctx, addr)
	if err != nil {
		return nil, err
	}
	return c.unary(ctx, addr, method, req)
}

// OpenStream establishes a bi-directional stream with the given
// flow-control window in bytes.
func (t *TCPTransport) OpenStream(ctx context.Context, addr, method string, window int) (ClientStream, error) {
	if window <= 0 {
		return nil, errors.New("rpc: flow-control window must be positive")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if t.local.has(addr) {
		return t.local.OpenStream(ctx, addr, method, window)
	}
	c, err := t.connFor(ctx, addr)
	if err != nil {
		return nil, err
	}
	return c.openStream(ctx, addr, method, window)
}

// Gob payload bodies for each frame type. Message fields are interfaces:
// the concrete types must be gob-registered (internal/wire does this for
// every storage message from init()).
type tcpUnaryReq struct {
	Addr   string
	Method string
	M      any
}

type tcpUnaryResp struct {
	M   any
	Err *WireError
}

type tcpStreamOpen struct {
	Addr   string
	Method string
	Window int
}

type tcpStreamAccept struct {
	Err *WireError
}

type tcpStreamMsg struct {
	M any
}

type tcpWindow struct {
	Bytes int
}

type tcpReset struct {
	Err *WireError
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

type unaryResult struct {
	m   any
	err error
}

// tcpConn is one multiplexed connection. The same type serves both the
// dialing side (which originates calls and streams) and the accepting
// side (which hosts handlers); a process pair that calls in both
// directions simply holds two connections.
type tcpConn struct {
	t        *TCPTransport
	nc       net.Conn
	hostport string // "" on accepted connections

	wmu sync.Mutex // serializes whole-frame writes

	mu       sync.Mutex
	nextID   uint32
	calls    map[uint32]chan unaryResult
	cancels  map[uint32]context.CancelFunc // inbound unary calls, by id
	opens    map[uint32]chan *WireError
	streams  map[uint32]*tcpClientStream
	sstreams map[uint32]*tcpServerStream
	dead     bool
	deadErr  error
	deadCh   chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
}

func newTCPConn(t *TCPTransport, nc net.Conn, hostport string) *tcpConn {
	ctx, cancel := context.WithCancel(t.ctx)
	return &tcpConn{
		t:        t,
		nc:       nc,
		hostport: hostport,
		calls:    make(map[uint32]chan unaryResult),
		cancels:  make(map[uint32]context.CancelFunc),
		opens:    make(map[uint32]chan *WireError),
		streams:  make(map[uint32]*tcpClientStream),
		sstreams: make(map[uint32]*tcpServerStream),
		deadCh:   make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
}

func (c *tcpConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// fail tears the connection down: every pending call, open and stream on
// it terminates with err (an ErrDropped-class error — the peer may have
// acted on anything already written).
func (c *tcpConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.deadErr = err
	calls := c.calls
	opens := c.opens
	streams := c.streams
	sstreams := c.sstreams
	c.calls = make(map[uint32]chan unaryResult)
	c.opens = make(map[uint32]chan *WireError)
	c.streams = make(map[uint32]*tcpClientStream)
	c.sstreams = make(map[uint32]*tcpServerStream)
	close(c.deadCh)
	c.mu.Unlock()
	c.cancel()
	c.nc.Close()
	for _, ch := range calls {
		ch <- unaryResult{err: err}
	}
	for _, ch := range opens {
		ch <- encodeWireError(err)
	}
	for _, cs := range streams {
		cs.fail(err)
	}
	for _, ss := range sstreams {
		ss.reset(err)
	}
	c.t.removeConn(c)
}

// writeFrame gob-encodes body (nil for a bare frame) and writes one
// frame. A write failure kills the connection.
func (c *tcpConn) writeFrame(typ frameType, id uint32, body any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = encodeGob(body)
		if err != nil {
			return fmt.Errorf("rpc: encode frame %d: %w", typ, err)
		}
	}
	buf := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), typ, id, payload)
	c.wmu.Lock()
	_, err := c.nc.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		werr := fmt.Errorf("%w: write to %s: %v", ErrDropped, c.nc.RemoteAddr(), err)
		c.fail(werr)
		return werr
	}
	return nil
}

func (c *tcpConn) readLoop() {
	for {
		f, err := readFrame(c.nc)
		if err != nil {
			c.fail(fmt.Errorf("%w: connection to %s lost: %v", ErrDropped, c.nc.RemoteAddr(), err))
			return
		}
		if err := c.dispatch(f); err != nil {
			c.fail(fmt.Errorf("%w: protocol error from %s: %v", ErrDropped, c.nc.RemoteAddr(), err))
			return
		}
	}
}

// dispatch routes one frame. It must never block on application code:
// the reader staying responsive is what keeps window/credit frames
// flowing and prevents cross-stream head-of-line deadlock.
func (c *tcpConn) dispatch(f frame) error {
	switch f.typ {
	case ftUnaryReq:
		var req tcpUnaryReq
		if err := decodeGob(f.payload, &req); err != nil {
			return err
		}
		hctx, hcancel := context.WithCancel(c.ctx)
		c.mu.Lock()
		c.cancels[f.id] = hcancel
		c.mu.Unlock()
		go c.serveUnary(hctx, hcancel, f.id, req)
	case ftUnaryCancel:
		c.mu.Lock()
		hcancel := c.cancels[f.id]
		c.mu.Unlock()
		if hcancel != nil {
			hcancel()
		}
	case ftUnaryResp:
		var resp tcpUnaryResp
		if err := decodeGob(f.payload, &resp); err != nil {
			return err
		}
		c.mu.Lock()
		ch := c.calls[f.id]
		delete(c.calls, f.id)
		c.mu.Unlock()
		if ch != nil {
			ch <- unaryResult{m: resp.M, err: decodeWireError(resp.Err)}
		}
	case ftStreamOpen:
		var open tcpStreamOpen
		if err := decodeGob(f.payload, &open); err != nil {
			return err
		}
		c.serveStreamOpen(f.id, open)
	case ftStreamAccept:
		var acc tcpStreamAccept
		if err := decodeGob(f.payload, &acc); err != nil {
			return err
		}
		c.mu.Lock()
		ch := c.opens[f.id]
		delete(c.opens, f.id)
		c.mu.Unlock()
		if ch != nil {
			ch <- acc.Err
		}
	case ftStreamMsg:
		var msg tcpStreamMsg
		if err := decodeGob(f.payload, &msg); err != nil {
			return err
		}
		c.mu.Lock()
		ss := c.sstreams[f.id]
		c.mu.Unlock()
		if ss != nil {
			ss.enqueue(msg.M)
		}
	case ftStreamResp:
		var msg tcpStreamMsg
		if err := decodeGob(f.payload, &msg); err != nil {
			return err
		}
		c.mu.Lock()
		cs := c.streams[f.id]
		c.mu.Unlock()
		if cs != nil {
			cs.enqueue(msg.M)
		}
	case ftWindow:
		var w tcpWindow
		if err := decodeGob(f.payload, &w); err != nil {
			return err
		}
		c.mu.Lock()
		cs := c.streams[f.id]
		ss := c.sstreams[f.id]
		c.mu.Unlock()
		if cs != nil {
			cs.credit(w.Bytes)
		}
		if ss != nil {
			ss.credit(w.Bytes)
		}
	case ftCloseSend:
		c.mu.Lock()
		ss := c.sstreams[f.id]
		c.mu.Unlock()
		if ss != nil {
			ss.closeSend()
		}
	case ftReset:
		var r tcpReset
		if err := decodeGob(f.payload, &r); err != nil {
			return err
		}
		c.mu.Lock()
		ss := c.sstreams[f.id]
		c.mu.Unlock()
		if ss != nil {
			ss.reset(decodeWireError(r.Err))
		}
	case ftHandlerDone:
		var r tcpReset
		if err := decodeGob(f.payload, &r); err != nil {
			return err
		}
		c.mu.Lock()
		cs := c.streams[f.id]
		delete(c.streams, f.id)
		c.mu.Unlock()
		if cs != nil {
			cs.handlerDone(decodeWireError(r.Err))
		}
	default:
		return fmt.Errorf("unexpected frame type %d", f.typ)
	}
	return nil
}

func (c *tcpConn) serveUnary(ctx context.Context, cancel context.CancelFunc, id uint32, req tcpUnaryReq) {
	defer func() {
		cancel()
		c.mu.Lock()
		delete(c.cancels, id)
		c.mu.Unlock()
	}()
	var resp any
	var err error
	if srv, lerr := c.t.local.lookup(req.Addr); lerr != nil {
		err = lerr
	} else if h, ok := srv.unaryHandler(req.Method); !ok {
		err = fmt.Errorf("%w: %s/%s", ErrNoMethod, req.Addr, req.Method)
	} else {
		resp, err = h(ctx, req.M)
	}
	c.writeFrame(ftUnaryResp, id, &tcpUnaryResp{M: resp, Err: encodeWireError(err)})
}

func (c *tcpConn) serveStreamOpen(id uint32, open tcpStreamOpen) {
	srv, err := c.t.local.lookup(open.Addr)
	var h StreamHandler
	if err == nil {
		var ok bool
		h, ok = srv.streamHandler(open.Method)
		if !ok {
			err = fmt.Errorf("%w: %s/%s", ErrNoMethod, open.Addr, open.Method)
		}
	}
	if err == nil && open.Window <= 0 {
		err = errors.New("rpc: flow-control window must be positive")
	}
	if err != nil {
		c.writeFrame(ftStreamAccept, id, &tcpStreamAccept{Err: encodeWireError(err)})
		return
	}
	hctx, hcancel := context.WithCancel(c.ctx)
	ss := newTCPServerStream(c, id, open.Window, hcancel)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		hcancel()
		return
	}
	c.sstreams[id] = ss
	c.mu.Unlock()
	if c.writeFrame(ftStreamAccept, id, &tcpStreamAccept{}) != nil {
		hcancel()
		return
	}
	go func() {
		herr := h(hctx, ss)
		hcancel()
		c.mu.Lock()
		delete(c.sstreams, id)
		c.mu.Unlock()
		ss.finish(herr)
		c.writeFrame(ftHandlerDone, id, &tcpReset{Err: encodeWireError(herr)})
	}()
}

func (c *tcpConn) newID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

func (c *tcpConn) unary(ctx context.Context, addr, method string, req any) (any, error) {
	id := c.newID()
	ch := make(chan unaryResult, 1)
	c.mu.Lock()
	if c.dead {
		err := c.deadErr
		c.mu.Unlock()
		return nil, err
	}
	c.calls[id] = ch
	c.mu.Unlock()
	if err := c.writeFrame(ftUnaryReq, id, &tcpUnaryReq{Addr: addr, Method: method, M: req}); err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r.m, r.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		c.writeFrame(ftUnaryCancel, id, nil)
		return nil, ctx.Err()
	}
}

func (c *tcpConn) openStream(ctx context.Context, addr, method string, window int) (ClientStream, error) {
	id := c.newID()
	acceptCh := make(chan *WireError, 1)
	cs := newTCPClientStream(c, id, window)
	c.mu.Lock()
	if c.dead {
		err := c.deadErr
		c.mu.Unlock()
		return nil, err
	}
	c.opens[id] = acceptCh
	c.streams[id] = cs
	c.mu.Unlock()
	if err := c.writeFrame(ftStreamOpen, id, &tcpStreamOpen{Addr: addr, Method: method, Window: window}); err != nil {
		return nil, err
	}
	select {
	case werr := <-acceptCh:
		if werr != nil {
			c.mu.Lock()
			delete(c.streams, id)
			c.mu.Unlock()
			return nil, decodeWireError(werr)
		}
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.opens, id)
		delete(c.streams, id)
		c.mu.Unlock()
		c.writeFrame(ftReset, id, &tcpReset{Err: encodeWireError(ctx.Err())})
		return nil, ctx.Err()
	}
	// Propagate caller cancellation as a stream reset for the life of the
	// stream.
	go func() {
		select {
		case <-ctx.Done():
			err := context.Cause(ctx)
			if err == nil {
				err = context.Canceled
			}
			c.writeFrame(ftReset, id, &tcpReset{Err: encodeWireError(err)})
			cs.fail(err)
		case <-cs.doneCh:
		}
	}()
	return cs, nil
}

// tcpClientStream is the dialing end of one stream. Its flow-control
// ledger mirrors the in-memory streamCore: inflight counts bytes written
// but not yet credited back by the server's Recv, and the window bounds
// buffered bytes with the same oversize-degrades-to-lock-step rule.
type tcpClientStream struct {
	conn   *tcpConn
	id     uint32
	window int

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	recvQ    []any
	sendDone bool
	closed   bool
	err      error
	doneCh   chan struct{}
	doneOnce sync.Once
}

func newTCPClientStream(c *tcpConn, id uint32, window int) *tcpClientStream {
	cs := &tcpClientStream{conn: c, id: id, window: window, doneCh: make(chan struct{})}
	cs.cond = sync.NewCond(&cs.mu)
	return cs
}

func (cs *tcpClientStream) fail(err error) {
	cs.mu.Lock()
	if cs.err == nil {
		cs.err = err
	}
	cs.closed = true
	cs.cond.Broadcast()
	cs.mu.Unlock()
	cs.doneOnce.Do(func() { close(cs.doneCh) })
}

// handlerDone records the server handler's return. A nil error is the
// clean completion the in-memory transport surfaces as io.EOF.
func (cs *tcpClientStream) handlerDone(err error) {
	if err == nil {
		err = io.EOF
	}
	cs.fail(err)
}

func (cs *tcpClientStream) enqueue(m any) {
	cs.mu.Lock()
	cs.recvQ = append(cs.recvQ, m)
	cs.cond.Broadcast()
	cs.mu.Unlock()
}

func (cs *tcpClientStream) credit(bytes int) {
	cs.mu.Lock()
	cs.inflight -= bytes
	if cs.inflight < 0 {
		cs.inflight = 0
	}
	cs.cond.Broadcast()
	cs.mu.Unlock()
}

func (cs *tcpClientStream) Send(m any) error {
	size := sizeOf(m)
	cs.mu.Lock()
	for !cs.closed && !cs.sendDone && cs.inflight+size > cs.window && cs.inflight > 0 {
		cs.cond.Wait()
	}
	if cs.closed {
		err := cs.err
		cs.mu.Unlock()
		if err == io.EOF || err == nil {
			err = ErrClosed
		}
		return err
	}
	if cs.sendDone {
		cs.mu.Unlock()
		return ErrClosed
	}
	cs.inflight += size
	cs.mu.Unlock()
	return cs.conn.writeFrame(ftStreamMsg, cs.id, &tcpStreamMsg{M: m})
}

func (cs *tcpClientStream) Recv() (any, error) {
	cs.mu.Lock()
	for len(cs.recvQ) == 0 && !cs.closed {
		cs.cond.Wait()
	}
	if len(cs.recvQ) > 0 {
		m := cs.recvQ[0]
		cs.recvQ = cs.recvQ[1:]
		cs.mu.Unlock()
		// Return the message's credit so the server may push more.
		cs.conn.writeFrame(ftWindow, cs.id, &tcpWindow{Bytes: sizeOf(m)})
		return m, nil
	}
	err := cs.err
	cs.mu.Unlock()
	return nil, err
}

func (cs *tcpClientStream) CloseSend() {
	cs.mu.Lock()
	already := cs.sendDone
	cs.sendDone = true
	cs.cond.Broadcast()
	closed := cs.closed
	cs.mu.Unlock()
	if !already && !closed {
		cs.conn.writeFrame(ftCloseSend, cs.id, nil)
	}
}

func (cs *tcpClientStream) Close() {
	cs.mu.Lock()
	alreadyClosed := cs.closed
	cs.mu.Unlock()
	if !alreadyClosed {
		cs.conn.writeFrame(ftReset, cs.id, &tcpReset{Err: encodeWireError(ErrClosed)})
	}
	cs.fail(ErrClosed)
	// Wait for the remote handler to finish (its handlerDone frame) or
	// for the connection to die — mirroring the in-memory Close, which
	// joins the handler goroutine.
	<-cs.doneCh
}

func (cs *tcpClientStream) Err() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.err
}

// tcpServerStream is the accepting end of one stream, handed to the
// registered StreamHandler.
type tcpServerStream struct {
	conn   *tcpConn
	id     uint32
	window int
	cancel context.CancelFunc

	mu           sync.Mutex
	cond         *sync.Cond
	recvQ        []any
	queuedBytes  int // received, not yet Recv'd — the request-window debt
	respInflight int // sent, not yet credited — the response-window debt
	sendDone     bool
	closed       bool
	err          error
}

func newTCPServerStream(c *tcpConn, id uint32, window int, cancel context.CancelFunc) *tcpServerStream {
	ss := &tcpServerStream{conn: c, id: id, window: window, cancel: cancel}
	ss.cond = sync.NewCond(&ss.mu)
	return ss
}

func (ss *tcpServerStream) enqueue(m any) {
	ss.mu.Lock()
	ss.recvQ = append(ss.recvQ, m)
	ss.queuedBytes += sizeOf(m)
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

func (ss *tcpServerStream) credit(bytes int) {
	ss.mu.Lock()
	ss.respInflight -= bytes
	if ss.respInflight < 0 {
		ss.respInflight = 0
	}
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

func (ss *tcpServerStream) closeSend() {
	ss.mu.Lock()
	ss.sendDone = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

// reset terminates the stream from the client side (cancellation, Close,
// or connection loss): the handler's context is cancelled and both
// directions unblock.
func (ss *tcpServerStream) reset(err error) {
	ss.mu.Lock()
	if ss.err == nil {
		ss.err = err
	}
	ss.closed = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
	ss.cancel()
}

// finish marks the handler's own return so late Sends/Recvs fail rather
// than touch a finished stream.
func (ss *tcpServerStream) finish(err error) {
	if err == nil {
		err = io.EOF
	}
	ss.mu.Lock()
	if ss.err == nil {
		ss.err = err
	}
	ss.closed = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

func (ss *tcpServerStream) Recv() (any, error) {
	ss.mu.Lock()
	for len(ss.recvQ) == 0 && !ss.closed && !ss.sendDone {
		ss.cond.Wait()
	}
	if len(ss.recvQ) > 0 {
		m := ss.recvQ[0]
		ss.recvQ = ss.recvQ[1:]
		size := sizeOf(m)
		ss.queuedBytes -= size
		ss.mu.Unlock()
		// Return the credit so the client may send more.
		ss.conn.writeFrame(ftWindow, ss.id, &tcpWindow{Bytes: size})
		return m, nil
	}
	if ss.closed && ss.err != nil && ss.err != io.EOF && !errors.Is(ss.err, ErrClosed) {
		err := ss.err
		ss.mu.Unlock()
		return nil, err
	}
	ss.mu.Unlock()
	return nil, io.EOF
}

func (ss *tcpServerStream) Send(m any) error {
	size := sizeOf(m)
	ss.mu.Lock()
	for !ss.closed && ss.respInflight+size > ss.window && ss.respInflight > 0 {
		ss.cond.Wait()
	}
	if ss.closed {
		err := ss.err
		ss.mu.Unlock()
		if err != nil && err != io.EOF {
			return err
		}
		return ErrClosed
	}
	ss.respInflight += size
	ss.mu.Unlock()
	return ss.conn.writeFrame(ftStreamResp, ss.id, &tcpStreamMsg{M: m})
}

func (ss *tcpServerStream) InflightBytes() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.queuedBytes
}

func (ss *tcpServerStream) ResponseInflightBytes() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.respInflight
}

func init() {
	// Basic concrete types that may cross the wire inside `any` fields
	// without a package-level registration of their own.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register(float64(0))
	gob.Register([]string(nil))
	gob.Register(map[string]string(nil))
}
