package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type sizedMsg struct {
	id   int
	size int
}

func (m sizedMsg) WireSize() int { return m.size }

func echoServer() *Server {
	s := NewServer()
	s.RegisterUnary("echo", func(_ context.Context, req any) (any, error) {
		return req, nil
	})
	s.RegisterStream("echo", func(_ context.Context, ss ServerStream) error {
		for {
			m, err := ss.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := ss.Send(m); err != nil {
				return err
			}
		}
	})
	return s
}

func TestUnaryRoundTrip(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("server-1", echoServer())
	resp, err := n.Unary(context.Background(), "server-1", "echo", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "hello" {
		t.Fatalf("resp = %v", resp)
	}
	if _, err := n.Unary(context.Background(), "server-1", "nope", nil); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Unary(context.Background(), "ghost", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnaryConnectionPooling(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	for i := 0; i < 10; i++ {
		if _, err := n.Unary(context.Background(), "s", "echo", i); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.UnaryCalls != 10 {
		t.Fatalf("calls = %d", st.UnaryCalls)
	}
	// Sequential calls set up one connection and reuse it nine times.
	if st.ConnectionSetups != 1 || st.PooledReuses != 9 {
		t.Fatalf("setups = %d, reuses = %d; pooling broken", st.ConnectionSetups, st.PooledReuses)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	n.SetPartitioned("s", true)
	if _, err := n.Unary(context.Background(), "s", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.SetPartitioned("s", false)
	if _, err := n.Unary(context.Background(), "s", "echo", 1); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEchoPipelined(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	cs, err := n.OpenStream(context.Background(), "s", "echo", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline sends without waiting for responses.
	const msgs = 100
	for i := 0; i < msgs; i++ {
		if err := cs.Send(sizedMsg{id: i, size: 100}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		m, err := cs.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.(sizedMsg).id != i {
			t.Fatalf("response %d arrived out of order: %v", i, m)
		}
	}
	cs.CloseSend()
	if _, err := cs.Recv(); err != io.EOF {
		t.Fatalf("after clean close, Recv err = %v, want EOF", err)
	}
}

func TestStreamFlowControlThrottles(t *testing.T) {
	n := NewNetwork(nil)
	s := NewServer()
	gate := make(chan struct{})
	var received atomic.Int64
	s.RegisterStream("slow", func(_ context.Context, ss ServerStream) error {
		for {
			<-gate // only consume when the test allows
			_, err := ss.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			received.Add(1)
		}
	})
	n.Register("s", s)
	cs, err := n.OpenStream(context.Background(), "s", "slow", 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Window fits two 400-byte messages; the third Send must block.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if err := cs.Send(sizedMsg{id: i, size: 400}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		t.Fatalf("third send completed despite full window (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as required.
	}
	gate <- struct{}{} // server consumes one message, releasing credit
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send did not unblock after credit release")
	}
	gate <- struct{}{}
	gate <- struct{}{}
	cs.CloseSend()
	close(gate)
	cs.Recv() // wait for handler exit via EOF path
	if received.Load() != 3 {
		t.Fatalf("server received %d messages, want 3", received.Load())
	}
}

func TestStreamOversizeMessageLockStep(t *testing.T) {
	// The window bounds *buffered* bytes, HTTP/2-style: a message larger
	// than the whole window is still admitted when nothing is in flight,
	// so an undersized window degrades to lock-step transfer instead of
	// wedging the stream.
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	cs, err := n.OpenStream(context.Background(), "s", "echo", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cs.Send(sizedMsg{id: i, size: 101}); err != nil {
			t.Fatalf("oversize message %d rejected: %v", i, err)
		}
		m, err := cs.Recv()
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if got := m.(sizedMsg).id; got != i {
			t.Fatalf("echo %d returned id %d", i, got)
		}
	}
	cs.CloseSend()
	if _, err := cs.Recv(); err != io.EOF {
		t.Fatalf("after CloseSend: %v, want EOF", err)
	}
}

func TestStreamHandlerErrorPropagates(t *testing.T) {
	n := NewNetwork(nil)
	s := NewServer()
	boom := errors.New("schema mismatch")
	s.RegisterStream("fail", func(_ context.Context, ss ServerStream) error {
		ss.Recv()
		return boom
	})
	n.Register("s", s)
	cs, err := n.OpenStream(context.Background(), "s", "fail", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Send(sizedMsg{size: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Recv(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want handler error", err)
	}
}

func TestStreamDiesOnPartition(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	cs, err := n.OpenStream(context.Background(), "s", "echo", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Send(sizedMsg{id: 1, size: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Recv(); err != nil {
		t.Fatal(err)
	}
	n.SetPartitioned("s", true)
	if err := cs.Send(sizedMsg{id: 2, size: 10}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send through partition: err = %v", err)
	}
}

func TestStreamContextCancel(t *testing.T) {
	n := NewNetwork(nil)
	s := NewServer()
	s.RegisterStream("hang", func(ctx context.Context, ss ServerStream) error {
		<-ctx.Done()
		return ctx.Err()
	})
	n.Register("s", s)
	ctx, cancel := context.WithCancel(context.Background())
	cs, err := n.OpenStream(ctx, "s", "hang", 1000)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := cs.Recv(); err == nil || err == io.EOF {
		t.Fatalf("recv after cancel: err = %v, want cancellation", err)
	}
}

func TestStreamCloseUnblocksAndStopsHandler(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	cs, err := n.OpenStream(context.Background(), "s", "echo", 1000)
	if err != nil {
		t.Fatal(err)
	}
	cs.Close() // must wait for handler exit without deadlock
	if err := cs.Send(sizedMsg{size: 1}); err == nil {
		t.Fatal("send on closed stream accepted")
	}
}

func TestConcurrentStreamsIsolated(t *testing.T) {
	n := NewNetwork(nil)
	n.Register("s", echoServer())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cs, err := n.OpenStream(context.Background(), "s", "echo", 1<<20)
			if err != nil {
				t.Error(err)
				return
			}
			defer cs.Close()
			for i := 0; i < 50; i++ {
				want := fmt.Sprintf("g%d-m%d", g, i)
				if err := cs.Send(want); err != nil {
					t.Error(err)
					return
				}
				got, err := cs.Recv()
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("stream %d: got %v, want %v (cross-talk)", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerSendAfterClientClose(t *testing.T) {
	n := NewNetwork(nil)
	s := NewServer()
	errCh := make(chan error, 1)
	s.RegisterStream("m", func(_ context.Context, ss ServerStream) error {
		ss.Recv()
		// Give the client time to Close.
		time.Sleep(20 * time.Millisecond)
		errCh <- ss.Send("late")
		return nil
	})
	n.Register("s", s)
	cs, err := n.OpenStream(context.Background(), "s", "m", 1000)
	if err != nil {
		t.Fatal(err)
	}
	cs.Send(sizedMsg{size: 1})
	cs.Close()
	if err := <-errCh; err == nil {
		t.Fatal("server Send on torn-down stream accepted")
	}
}
