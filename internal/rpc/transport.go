package rpc

import "context"

// Transport is the abstraction every Vortex subsystem talks through: a
// way to host named logical servers and a way to call them, either as
// one-shot unary requests or as long-lived bi-directional streams with
// byte-based flow control.
//
// Two implementations exist:
//
//   - *Network, the in-memory transport: deterministic, with chaos and
//     latency injection — what the chaos, sim and unit-test layers run
//     against;
//   - *TCPTransport, the real-socket transport: length-prefixed
//     CRC32C-framed messages multiplexed over persistent connections,
//     for multi-process clusters.
//
// Both obey the same contract, enforced by the cross-transport
// conformance suite (conformance_test.go):
//
//   - Unary returns ErrUnreachable for an unknown/unreachable address
//     and ErrNoMethod for an unknown method, wrapping both with context;
//   - OpenStream fails fast with the same mapping;
//   - stream Send blocks while the flow-control window is exhausted and
//     unblocks when the peer Recvs (window semantics: the window bounds
//     buffered bytes, and an oversize message is admitted once the
//     direction is idle, degrading to lock-step transfer);
//   - a handler returning nil surfaces io.EOF on the client Recv after
//     the response queue drains; a handler error surfaces that error;
//   - cancelling the OpenStream context tears the stream down on both
//     ends.
type Transport interface {
	// Unary performs one request/response call.
	Unary(ctx context.Context, addr, method string, req any) (any, error)
	// OpenStream establishes a bi-directional stream to addr/method with
	// the given flow-control window in bytes.
	OpenStream(ctx context.Context, addr, method string, window int) (ClientStream, error)
	// Register attaches a server at the logical address addr, replacing
	// any previous one.
	Register(addr string, s *Server)
	// Deregister removes the server at addr (a crashed task); in-flight
	// streams to it fail on their next operation.
	Deregister(addr string)
}

// ClientStream is the client end of a bi-directional stream.
type ClientStream interface {
	// Send transmits one request, blocking while the flow-control window
	// is exhausted.
	Send(m any) error
	// Recv returns the next response, releasing its flow-control credit.
	// It returns io.EOF when the handler finished cleanly and no
	// responses remain.
	Recv() (any, error)
	// CloseSend signals that the client will send no more requests; the
	// server's Recv returns io.EOF after draining.
	CloseSend()
	// Close tears down the stream and waits for the handler to finish.
	Close()
	// Err returns the stream's terminal error, if any (io.EOF for a
	// clean handler completion).
	Err() error
}

// ServerStream is the server end of a bi-directional stream, passed to
// StreamHandlers.
type ServerStream interface {
	// Send transmits one response, blocking while the response-direction
	// flow-control window is exhausted.
	Send(m any) error
	// Recv returns the next request, releasing its flow-control credit.
	// It returns io.EOF after the client calls CloseSend and the queue
	// drains.
	Recv() (any, error)
	// InflightBytes reports the bytes currently counted against the
	// request-direction flow-control window.
	InflightBytes() int
	// ResponseInflightBytes reports the bytes counted against the
	// response-direction window.
	ResponseInflightBytes() int
}

var (
	_ Transport = (*Network)(nil)
	_ Transport = (*TCPTransport)(nil)
)
