package rpc

// The cross-transport conformance suite: every semantics subtest below
// runs against both the in-memory Network and the TCP transport, so the
// two implementations can never drift. Anything a subsystem relies on —
// error mapping, stream EOF discipline, flow-control blocking, context
// cancellation — belongs here, phrased against the Transport interface
// only.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// confMsg is an unsized conformance message (nominal accounting).
type confMsg struct {
	ID   int
	Body string
}

// confSized reports an explicit wire size.
type confSized struct {
	N    int
	Size int
}

func (m *confSized) WireSize() int { return m.Size }

func init() {
	gob.Register(&confMsg{})
	gob.Register(&confSized{})
}

// conformanceTarget builds a caller-side Transport plus the logical
// address a prepared *Server is reachable at.
type conformanceTarget struct {
	name string
	// make registers srv at the returned address and returns the
	// transport a client should call through.
	make func(t *testing.T, srv *Server) (Transport, string)
}

func conformanceTargets() []conformanceTarget {
	return []conformanceTarget{
		{
			name: "inmemory",
			make: func(t *testing.T, srv *Server) (Transport, string) {
				n := NewNetwork(nil)
				n.Register("conf-srv", srv)
				return n, "conf-srv"
			},
		},
		{
			name: "tcp",
			make: func(t *testing.T, srv *Server) (Transport, string) {
				host := NewTCPTransport()
				host.Register("conf-srv", srv)
				hostport, err := host.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
				caller := NewTCPTransport()
				caller.SetDefaultRoute(hostport)
				t.Cleanup(func() {
					caller.Close()
					host.Close()
				})
				return caller, "conf-srv"
			},
		},
	}
}

// forEachTransport runs fn once per transport implementation.
func forEachTransport(t *testing.T, fn func(t *testing.T, tr Transport, addr string, srv *Server)) {
	for _, target := range conformanceTargets() {
		target := target
		t.Run(target.name, func(t *testing.T) {
			srv := NewServer()
			tr, addr := target.make(t, srv)
			fn(t, tr, addr, srv)
		})
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", msg)
}

func TestConformanceUnaryRoundTrip(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterUnary("echo", func(_ context.Context, req any) (any, error) {
			m := req.(*confMsg)
			return &confMsg{ID: m.ID + 1, Body: m.Body + "!"}, nil
		})
		resp, err := tr.Unary(context.Background(), addr, "echo", &confMsg{ID: 41, Body: "hi"})
		if err != nil {
			t.Fatalf("unary: %v", err)
		}
		got := resp.(*confMsg)
		if got.ID != 42 || got.Body != "hi!" {
			t.Fatalf("got %+v", got)
		}
	})
}

func TestConformanceUnaryNilRequestAndResponse(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterUnary("nil", func(_ context.Context, req any) (any, error) {
			if req != nil {
				return nil, fmt.Errorf("expected nil request, got %T", req)
			}
			return nil, nil
		})
		resp, err := tr.Unary(context.Background(), addr, "nil", nil)
		if err != nil {
			t.Fatalf("unary: %v", err)
		}
		if resp != nil {
			t.Fatalf("expected nil response, got %T", resp)
		}
	})
}

func TestConformanceUnaryErrorTextPreserved(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterUnary("boom", func(_ context.Context, _ any) (any, error) {
			return nil, errors.New("custom failure detail 1234")
		})
		_, err := tr.Unary(context.Background(), addr, "boom", &confMsg{})
		if err == nil || !strings.Contains(err.Error(), "custom failure detail 1234") {
			t.Fatalf("error text lost: %v", err)
		}
	})
}

func TestConformanceUnarySentinelErrorSurvives(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterUnary("dropped", func(_ context.Context, _ any) (any, error) {
			return nil, fmt.Errorf("%w: synthetic", ErrDropped)
		})
		_, err := tr.Unary(context.Background(), addr, "dropped", &confMsg{})
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("want ErrDropped, got %v", err)
		}
	})
}

func TestConformanceUnaryNoMethod(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		_, err := tr.Unary(context.Background(), addr, "nope", &confMsg{})
		if !errors.Is(err, ErrNoMethod) {
			t.Fatalf("want ErrNoMethod, got %v", err)
		}
	})
}

func TestConformanceUnaryUnknownAddrUnreachable(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		_, err := tr.Unary(context.Background(), "no-such-task", "echo", &confMsg{})
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("want ErrUnreachable, got %v", err)
		}
	})
}

func TestConformanceUnaryConcurrent(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterUnary("echo", func(_ context.Context, req any) (any, error) {
			return req, nil
		})
		var wg sync.WaitGroup
		errCh := make(chan error, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := tr.Unary(context.Background(), addr, "echo", &confMsg{ID: i})
				if err != nil {
					errCh <- err
					return
				}
				if got := resp.(*confMsg).ID; got != i {
					errCh <- fmt.Errorf("call %d got %d", i, got)
				}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	})
}

func TestConformanceUnaryContextCancel(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		started := make(chan struct{})
		srv.RegisterUnary("hang", func(ctx context.Context, _ any) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-started
			cancel()
		}()
		_, err := tr.Unary(ctx, addr, "hang", &confMsg{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})
}

func TestConformanceStreamEcho(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("echo", func(_ context.Context, ss ServerStream) error {
			for {
				m, err := ss.Recv()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if err := ss.Send(m); err != nil {
					return err
				}
			}
		})
		cs, err := tr.OpenStream(context.Background(), addr, "echo", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < 10; i++ {
			if err := cs.Send(&confMsg{ID: i}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		cs.CloseSend()
		for i := 0; i < 10; i++ {
			m, err := cs.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if got := m.(*confMsg).ID; got != i {
				t.Fatalf("recv %d got %d", i, got)
			}
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("want io.EOF after drain, got %v", err)
		}
		if err := cs.Err(); err != io.EOF {
			t.Fatalf("Err() after clean end: want io.EOF, got %v", err)
		}
	})
}

func TestConformanceStreamEOFOnImmediateReturn(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("quick", func(_ context.Context, _ ServerStream) error {
			return nil
		})
		cs, err := tr.OpenStream(context.Background(), addr, "quick", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	})
}

func TestConformanceStreamResponsesDrainBeforeEOF(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("burst", func(_ context.Context, ss ServerStream) error {
			for i := 0; i < 5; i++ {
				if err := ss.Send(&confMsg{ID: i}); err != nil {
					return err
				}
			}
			return nil
		})
		cs, err := tr.OpenStream(context.Background(), addr, "burst", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < 5; i++ {
			m, err := cs.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if got := m.(*confMsg).ID; got != i {
				t.Fatalf("recv %d got %d", i, got)
			}
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("want io.EOF after drain, got %v", err)
		}
	})
}

func TestConformanceStreamHandlerErrorPropagates(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("fail", func(_ context.Context, ss ServerStream) error {
			if _, err := ss.Recv(); err != nil {
				return err
			}
			return fmt.Errorf("%w: handler gave up", ErrDropped)
		})
		cs, err := tr.OpenStream(context.Background(), addr, "fail", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := cs.Send(&confMsg{ID: 1}); err != nil {
			t.Fatalf("send: %v", err)
		}
		_, err = cs.Recv()
		if !errors.Is(err, ErrDropped) || !strings.Contains(err.Error(), "handler gave up") {
			t.Fatalf("want wrapped ErrDropped with text, got %v", err)
		}
	})
}

func TestConformanceStreamNoMethod(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		_, err := tr.OpenStream(context.Background(), addr, "nope", 1024)
		if !errors.Is(err, ErrNoMethod) {
			t.Fatalf("want ErrNoMethod, got %v", err)
		}
	})
}

func TestConformanceStreamUnknownAddrUnreachable(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		_, err := tr.OpenStream(context.Background(), "no-such-task", "echo", 1024)
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("want ErrUnreachable, got %v", err)
		}
	})
}

func TestConformanceStreamRejectsNonPositiveWindow(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("echo", func(_ context.Context, _ ServerStream) error { return nil })
		if _, err := tr.OpenStream(context.Background(), addr, "echo", 0); err == nil {
			t.Fatal("want error for zero window")
		}
	})
}

// registerGatedSink installs a stream handler that only Recvs when told
// to, and reports each received message — the harness for flow-control
// blocking tests.
func registerGatedSink(srv *Server, allow chan struct{}, got chan any) {
	srv.RegisterStream("sink", func(_ context.Context, ss ServerStream) error {
		for range allow {
			m, err := ss.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			got <- m
		}
		return nil
	})
}

func TestConformanceSendBlocksAtWindowAndUnblocksOnRecv(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		allow := make(chan struct{}, 16)
		got := make(chan any, 16)
		registerGatedSink(srv, allow, got)
		cs, err := tr.OpenStream(context.Background(), addr, "sink", 100)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cs.Close()
		// First message fits the window outright.
		if err := cs.Send(&confSized{N: 1, Size: 60}); err != nil {
			t.Fatalf("send 1: %v", err)
		}
		// Second would exceed the window while bytes are in flight: Send
		// must block.
		sendDone := make(chan error, 1)
		go func() { sendDone <- cs.Send(&confSized{N: 2, Size: 60}) }()
		select {
		case err := <-sendDone:
			t.Fatalf("send 2 did not block (err=%v)", err)
		case <-time.After(100 * time.Millisecond):
		}
		// The server Recv'ing message 1 returns its credit; Send unblocks.
		allow <- struct{}{}
		select {
		case err := <-sendDone:
			if err != nil {
				t.Fatalf("send 2 after credit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("send 2 still blocked after server Recv")
		}
		allow <- struct{}{}
		if m := <-got; m.(*confSized).N != 1 {
			t.Fatal("out of order")
		}
		if m := <-got; m.(*confSized).N != 2 {
			t.Fatal("out of order")
		}
		close(allow)
	})
}

func TestConformanceOversizeMessageLockStep(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		allow := make(chan struct{}, 16)
		got := make(chan any, 16)
		registerGatedSink(srv, allow, got)
		cs, err := tr.OpenStream(context.Background(), addr, "sink", 100)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cs.Close()
		// A message larger than the whole window is admitted while the
		// direction is idle (lock-step degradation, not a wedge).
		if err := cs.Send(&confSized{N: 1, Size: 500}); err != nil {
			t.Fatalf("oversize send: %v", err)
		}
		// But the next message must wait until the oversize one is
		// received.
		sendDone := make(chan error, 1)
		go func() { sendDone <- cs.Send(&confSized{N: 2, Size: 10}) }()
		select {
		case err := <-sendDone:
			t.Fatalf("send after oversize did not block (err=%v)", err)
		case <-time.After(100 * time.Millisecond):
		}
		allow <- struct{}{}
		select {
		case err := <-sendDone:
			if err != nil {
				t.Fatalf("send after credit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("send still blocked after oversize was received")
		}
		allow <- struct{}{}
		<-got
		<-got
		close(allow)
	})
}

func TestConformanceNominalAccountingForUnsizedMessages(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		allow := make(chan struct{}, 16)
		got := make(chan any, 16)
		registerGatedSink(srv, allow, got)
		// Window fits one nominal (256-byte) message but not two.
		cs, err := tr.OpenStream(context.Background(), addr, "sink", 300)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cs.Close()
		if err := cs.Send(&confMsg{ID: 1}); err != nil {
			t.Fatalf("send 1: %v", err)
		}
		sendDone := make(chan error, 1)
		go func() { sendDone <- cs.Send(&confMsg{ID: 2}) }()
		select {
		case err := <-sendDone:
			t.Fatalf("unsized send 2 did not block (err=%v)", err)
		case <-time.After(100 * time.Millisecond):
		}
		allow <- struct{}{}
		select {
		case err := <-sendDone:
			if err != nil {
				t.Fatalf("send 2: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("send 2 still blocked")
		}
		allow <- struct{}{}
		<-got
		<-got
		close(allow)
	})
}

func TestConformanceResponseDirectionFlowControl(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		sent := make(chan int, 16)
		srv.RegisterStream("push", func(_ context.Context, ss ServerStream) error {
			for i := 1; i <= 3; i++ {
				if err := ss.Send(&confSized{N: i, Size: 60}); err != nil {
					return err
				}
				sent <- i
			}
			return nil
		})
		cs, err := tr.OpenStream(context.Background(), addr, "push", 100)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		// The server can buffer one 60-byte response; the second Send
		// blocks until the client Recvs.
		if got := <-sent; got != 1 {
			t.Fatalf("first send %d", got)
		}
		select {
		case got := <-sent:
			t.Fatalf("server send %d did not block at response window", got)
		case <-time.After(100 * time.Millisecond):
		}
		m, err := cs.Recv()
		if err != nil || m.(*confSized).N != 1 {
			t.Fatalf("recv 1: %v %v", m, err)
		}
		select {
		case got := <-sent:
			if got != 2 {
				t.Fatalf("unblocked send %d", got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server send still blocked after client Recv")
		}
		for i := 2; i <= 3; i++ {
			m, err := cs.Recv()
			if err != nil || m.(*confSized).N != i {
				t.Fatalf("recv %d: %v %v", i, m, err)
			}
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	})
}

func TestConformanceContextCancelMidStream(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		handlerCtxDone := make(chan struct{})
		srv.RegisterStream("hang", func(ctx context.Context, ss ServerStream) error {
			<-ctx.Done()
			close(handlerCtxDone)
			return ctx.Err()
		})
		ctx, cancel := context.WithCancel(context.Background())
		cs, err := tr.OpenStream(ctx, addr, "hang", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		cancel()
		select {
		case <-handlerCtxDone:
		case <-time.After(5 * time.Second):
			t.Fatal("handler context never cancelled")
		}
		eventually(t, func() bool {
			_, err := cs.Recv()
			return errors.Is(err, context.Canceled)
		}, "client Recv should surface context.Canceled")
		eventually(t, func() bool {
			return cs.Send(&confMsg{}) != nil
		}, "client Send should fail after cancellation")
	})
}

func TestConformanceCloseSendYieldsServerEOF(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		sawEOF := make(chan struct{})
		srv.RegisterStream("drain", func(_ context.Context, ss ServerStream) error {
			n := 0
			for {
				_, err := ss.Recv()
				if err == io.EOF {
					if n == 3 {
						close(sawEOF)
					}
					return nil
				}
				if err != nil {
					return err
				}
				n++
			}
		})
		cs, err := tr.OpenStream(context.Background(), addr, "drain", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := cs.Send(&confMsg{ID: i}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		cs.CloseSend()
		select {
		case <-sawEOF:
		case <-time.After(5 * time.Second):
			t.Fatal("server never saw io.EOF after CloseSend")
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("client end: want io.EOF, got %v", err)
		}
	})
}

func TestConformanceSendAfterCloseSendFails(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("drain", func(_ context.Context, ss ServerStream) error {
			for {
				if _, err := ss.Recv(); err != nil {
					return nil
				}
			}
		})
		cs, err := tr.OpenStream(context.Background(), addr, "drain", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		cs.CloseSend()
		if err := cs.Send(&confMsg{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	})
}

func TestConformanceSendAfterHandlerReturnFails(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("quick", func(_ context.Context, _ ServerStream) error { return nil })
		cs, err := tr.OpenStream(context.Background(), addr, "quick", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := cs.Recv(); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
		if err := cs.Send(&confMsg{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed after handler return, got %v", err)
		}
	})
}

func TestConformanceServerSendAfterClientCloseFails(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		result := make(chan error, 1)
		started := make(chan struct{})
		srv.RegisterStream("push", func(ctx context.Context, ss ServerStream) error {
			close(started)
			<-ctx.Done()
			// Keep trying: the stream is torn down, so Send must fail
			// (possibly after in-flight credit drains).
			for i := 0; i < 100; i++ {
				if err := ss.Send(&confMsg{ID: i}); err != nil {
					result <- err
					return nil
				}
			}
			result <- nil
			return nil
		})
		cs, err := tr.OpenStream(context.Background(), addr, "push", 1024)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		<-started
		cs.Close()
		select {
		case err := <-result:
			if err == nil {
				t.Fatal("server Send kept succeeding after client Close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server handler never finished")
		}
	})
}

func TestConformanceConcurrentStreamsIsolated(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		srv.RegisterStream("echo", func(_ context.Context, ss ServerStream) error {
			for {
				m, err := ss.Recv()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if err := ss.Send(m); err != nil {
					return err
				}
			}
		})
		const streams = 8
		const msgs = 50
		var wg sync.WaitGroup
		errCh := make(chan error, streams)
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				cs, err := tr.OpenStream(context.Background(), addr, "echo", 1<<20)
				if err != nil {
					errCh <- err
					return
				}
				done := make(chan error, 1)
				go func() {
					for i := 0; i < msgs; i++ {
						m, err := cs.Recv()
						if err != nil {
							done <- fmt.Errorf("stream %d recv %d: %w", s, i, err)
							return
						}
						got := m.(*confMsg)
						if got.ID != s*1000+i {
							done <- fmt.Errorf("stream %d cross-talk: got %d", s, got.ID)
							return
						}
					}
					done <- nil
				}()
				for i := 0; i < msgs; i++ {
					if err := cs.Send(&confMsg{ID: s*1000 + i}); err != nil {
						errCh <- fmt.Errorf("stream %d send %d: %w", s, i, err)
						return
					}
				}
				cs.CloseSend()
				if err := <-done; err != nil {
					errCh <- err
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	})
}

func TestConformanceInflightAccounting(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr Transport, addr string, srv *Server) {
		ssCh := make(chan ServerStream, 1)
		release := make(chan struct{})
		srv.RegisterStream("hold", func(_ context.Context, ss ServerStream) error {
			ssCh <- ss
			<-release
			for {
				if _, err := ss.Recv(); err != nil {
					return nil
				}
			}
		})
		cs, err := tr.OpenStream(context.Background(), addr, "hold", 1<<20)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cs.Close()
		ss := <-ssCh
		if err := cs.Send(&confSized{N: 1, Size: 777}); err != nil {
			t.Fatalf("send: %v", err)
		}
		// The sized message's bytes count against the window until the
		// server Recvs it.
		eventually(t, func() bool { return ss.InflightBytes() == 777 }, "inflight should reach 777")
		close(release)
		eventually(t, func() bool { return ss.InflightBytes() == 0 }, "inflight should drain after Recv")
		cs.CloseSend()
	})
}
