package rpc

// TCP-specific fault surface: everything the in-memory transport cannot
// exhibit — failed dials, severed connections, partial frames, hostile
// bytes — must map onto the ErrUnreachable/ErrDropped contract the
// client retry logic is written against.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (caller *TCPTransport, host *TCPTransport, srv *Server) {
	t.Helper()
	srv = NewServer()
	host = NewTCPTransport()
	host.Register("task", srv)
	hostport, err := host.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	caller = NewTCPTransport()
	caller.SetDefaultRoute(hostport)
	t.Cleanup(func() {
		caller.Close()
		host.Close()
	})
	return caller, host, srv
}

func TestTCPNoRouteIsUnreachable(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()
	_, err := tr.Unary(context.Background(), "task", "m", &confMsg{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	if _, err := tr.OpenStream(context.Background(), "task", "m", 1024); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("open: want ErrUnreachable, got %v", err)
	}
}

func TestTCPDialFailureIsUnreachable(t *testing.T) {
	// Bind a port, then close it: the route points at a dead endpoint.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	tr := NewTCPTransport()
	tr.SetDialTimeout(500 * time.Millisecond)
	tr.AddRoute("task", dead)
	defer tr.Close()
	_, err = tr.Unary(context.Background(), "task", "m", &confMsg{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable from failed dial, got %v", err)
	}
}

func TestTCPConnectionResetMapsToDropped(t *testing.T) {
	caller, host, srv := newTCPPair(t)
	entered := make(chan struct{}, 1)
	srv.RegisterUnary("hang", func(ctx context.Context, _ any) (any, error) {
		entered <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := caller.Unary(context.Background(), "task", "hang", &confMsg{})
		errCh <- err
	}()
	<-entered
	// Sever every established connection mid-call: the server may have
	// acted, so the failure must be ErrDropped (retry same target), not
	// ErrUnreachable (rotate away).
	host.AbortConnections()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("want ErrDropped after reset, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unary never failed after connection reset")
	}
	// The transport recovers: the next call dials a fresh connection.
	srv.RegisterUnary("ok", func(_ context.Context, req any) (any, error) { return req, nil })
	if _, err := caller.Unary(context.Background(), "task", "ok", &confMsg{ID: 7}); err != nil {
		t.Fatalf("call after reset: %v", err)
	}
}

func TestTCPStreamDiesWithDroppedOnReset(t *testing.T) {
	caller, host, srv := newTCPPair(t)
	srv.RegisterStream("echo", func(_ context.Context, ss ServerStream) error {
		for {
			m, err := ss.Recv()
			if err != nil {
				return nil
			}
			if err := ss.Send(m); err != nil {
				return nil
			}
		}
	})
	cs, err := caller.OpenStream(context.Background(), "task", "echo", 1<<20)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := cs.Send(&confMsg{ID: 1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := cs.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	host.AbortConnections()
	eventually(t, func() bool {
		if err := cs.Send(&confMsg{ID: 2}); errors.Is(err, ErrDropped) || errors.Is(err, ErrClosed) {
			return true
		}
		_, err := cs.Recv()
		return errors.Is(err, ErrDropped)
	}, "stream should die with ErrDropped after reset")
}

func TestTCPPartialFrameAndGarbageDoNotWedgeHost(t *testing.T) {
	caller, host, srv := newTCPPair(t)
	srv.RegisterUnary("ok", func(_ context.Context, req any) (any, error) { return req, nil })

	// A peer that sends garbage: the host kills that connection only.
	raw, err := net.Dial("tcp", host.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("this is not a vortex frame at all--------"))
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	// EOF or ECONNRESET both prove the host tore the connection down.
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("host should close garbage connection")
	}
	raw.Close()

	// A peer that sends a frame header and dies mid-payload.
	raw2, err := net.Dial("tcp", host.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	full := appendFrame(nil, ftUnaryReq, 1, []byte("partial payload that will be cut"))
	raw2.Write(full[:len(full)-5])
	raw2.Close()

	// The host still serves well-formed peers.
	resp, err := caller.Unary(context.Background(), "task", "ok", &confMsg{ID: 3})
	if err != nil {
		t.Fatalf("unary after hostile peers: %v", err)
	}
	if resp.(*confMsg).ID != 3 {
		t.Fatalf("bad resp %+v", resp)
	}
}

func TestTCPBadCRCKillsConnection(t *testing.T) {
	_, host, _ := newTCPPair(t)
	raw, err := net.Dial("tcp", host.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	frame := appendFrame(nil, ftUnaryReq, 1, []byte("payload"))
	frame[len(frame)-1] ^= 0xff // corrupt the payload; CRC now mismatches
	raw.Write(frame)
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("host should drop connection on CRC mismatch")
	}
}

func TestTCPLocalDispatchWithoutListener(t *testing.T) {
	// A transport can host and call its own servers without ever binding
	// a socket — the coordinator process calling its own SMS tasks.
	tr := NewTCPTransport()
	defer tr.Close()
	srv := NewServer()
	srv.RegisterUnary("ok", func(_ context.Context, req any) (any, error) { return req, nil })
	tr.Register("task", srv)
	resp, err := tr.Unary(context.Background(), "task", "ok", &confMsg{ID: 9})
	if err != nil {
		t.Fatalf("local unary: %v", err)
	}
	if resp.(*confMsg).ID != 9 {
		t.Fatalf("bad resp %+v", resp)
	}
}

func TestTCPDeregisterMakesAddrUnreachable(t *testing.T) {
	caller, host, srv := newTCPPair(t)
	srv.RegisterUnary("ok", func(_ context.Context, req any) (any, error) { return req, nil })
	if _, err := caller.Unary(context.Background(), "task", "ok", &confMsg{}); err != nil {
		t.Fatalf("before deregister: %v", err)
	}
	host.Deregister("task")
	_, err := caller.Unary(context.Background(), "task", "ok", &confMsg{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable after deregister, got %v", err)
	}
}

func TestTCPTypedErrorRoundTrip(t *testing.T) {
	caller, _, srv := newTCPPair(t)
	srv.RegisterUnary("canceled", func(_ context.Context, _ any) (any, error) {
		return nil, context.DeadlineExceeded
	})
	_, err := caller.Unary(context.Background(), "task", "canceled", &confMsg{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded across the wire, got %v", err)
	}
}
