package rpc

import (
	"context"
	"errors"
	"io"
	"sync"
)

// The TCP transport must carry errors across process boundaries without
// breaking the callers' errors.Is / errors.As contracts: the client's
// retry logic rotates on ErrUnreachable, retries in place on ErrDropped,
// and reads typed push-back hints out of *sms.PushBackError. Inside one
// process those checks work by pointer identity; across gob they need a
// codec.
//
// The registry maps stable string codes to either a sentinel error (the
// decoded error wraps the local sentinel, so errors.Is matches and the
// remote message text is preserved) or a typed codec (the concrete error
// value round-trips, so errors.As matches). Packages register their own
// errors from init(): rpc registers its transport sentinels plus the
// context/io terminals below; internal/sms and internal/colossusrpc
// register theirs.

// WireError is the gob-encoded form of an error crossing the transport.
type WireError struct {
	// Code names a registered sentinel or typed codec ("" when the error
	// matched nothing — the decoded error is opaque text).
	Code string
	// Msg is the full remote error text.
	Msg string
	// Typed is the typed codec's payload, when Code names one.
	Typed []byte
}

type typedErrorCodec struct {
	code   string
	encode func(error) ([]byte, bool)
	decode func([]byte) error
}

var (
	errCodecMu   sync.RWMutex
	errSentinels []struct {
		code string
		err  error
	}
	errSentinelMap map[string]error = map[string]error{}
	errTyped       []typedErrorCodec
	errTypedMap    map[string]typedErrorCodec = map[string]typedErrorCodec{}
)

// RegisterErrorCode maps a sentinel error to a stable wire code. Encoding
// matches candidates with errors.Is in registration order; decoding
// produces an error that wraps the local sentinel and preserves the
// remote message text.
func RegisterErrorCode(code string, sentinel error) {
	errCodecMu.Lock()
	defer errCodecMu.Unlock()
	if _, dup := errSentinelMap[code]; dup {
		panic("rpc: duplicate error code " + code)
	}
	errSentinelMap[code] = sentinel
	errSentinels = append(errSentinels, struct {
		code string
		err  error
	}{code, sentinel})
}

// RegisterTypedError installs a typed error codec. encode returns the
// payload and true when it recognizes the error (typically errors.As on
// its concrete type); decode rebuilds the concrete error value. Typed
// codecs are consulted before sentinel codes, so a typed error that also
// matches a sentinel keeps its concrete round-trip.
func RegisterTypedError(code string, encode func(error) ([]byte, bool), decode func([]byte) error) {
	errCodecMu.Lock()
	defer errCodecMu.Unlock()
	if _, dup := errTypedMap[code]; dup {
		panic("rpc: duplicate typed error code " + code)
	}
	c := typedErrorCodec{code: code, encode: encode, decode: decode}
	errTypedMap[code] = c
	errTyped = append(errTyped, c)
}

// encodeWireError converts an error into its wire form (nil stays nil).
func encodeWireError(err error) *WireError {
	if err == nil {
		return nil
	}
	errCodecMu.RLock()
	defer errCodecMu.RUnlock()
	for _, tc := range errTyped {
		if payload, ok := tc.encode(err); ok {
			return &WireError{Code: tc.code, Msg: err.Error(), Typed: payload}
		}
	}
	for _, s := range errSentinels {
		if errors.Is(err, s.err) {
			return &WireError{Code: s.code, Msg: err.Error()}
		}
	}
	return &WireError{Msg: err.Error()}
}

// decodeWireError reverses encodeWireError (nil stays nil).
func decodeWireError(w *WireError) error {
	if w == nil {
		return nil
	}
	errCodecMu.RLock()
	tc, hasTyped := errTypedMap[w.Code]
	sentinel, hasSentinel := errSentinelMap[w.Code]
	errCodecMu.RUnlock()
	if hasTyped && w.Typed != nil {
		if err := tc.decode(w.Typed); err != nil {
			return err
		}
	}
	if hasSentinel {
		return &remoteError{msg: w.Msg, cause: sentinel}
	}
	if w.Msg == "" {
		return errors.New("rpc: unknown remote error")
	}
	return errors.New(w.Msg)
}

// remoteError preserves a remote error's text while unwrapping to the
// local sentinel its wire code named.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.cause }

func init() {
	// Transport sentinels and the terminal conditions streams propagate.
	RegisterErrorCode("rpc.unreachable", ErrUnreachable)
	RegisterErrorCode("rpc.nomethod", ErrNoMethod)
	RegisterErrorCode("rpc.closed", ErrClosed)
	RegisterErrorCode("rpc.dropped", ErrDropped)
	RegisterErrorCode("ctx.canceled", context.Canceled)
	RegisterErrorCode("ctx.deadline", context.DeadlineExceeded)
	RegisterErrorCode("io.eof", io.EOF)
}
