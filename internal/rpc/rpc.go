// Package rpc is the in-process transport standing in for gRPC. It
// reproduces the two connection disciplines the Vortex client library
// adaptively switches between (§5.4.2):
//
//   - short-lived unary request/response calls with optimistic
//     connection pooling — cheap for tables written infrequently;
//   - long-lived bi-directional streams that pipeline multiple in-flight
//     requests and enforce byte-based flow control, so a Stream Server
//     can throttle ingress when too much data is in flight.
//
// Fault injection (partitions, deregistered servers) and latency
// injection (per-hop and per-byte, from the latency model) happen here,
// so every caller exercises the same failure surface the production
// system has.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"vortex/internal/latencymodel"
	"vortex/internal/metrics"
)

// Errors returned by the transport.
var (
	ErrUnreachable = errors.New("rpc: server unreachable")
	ErrNoMethod    = errors.New("rpc: no such method")
	ErrClosed      = errors.New("rpc: stream closed")
	// ErrDropped: the request or response was lost in transit (injected
	// by a chaos schedule). Unlike ErrUnreachable the server may be
	// healthy — and may have acted — so callers retry the same target
	// first rather than rotating away.
	ErrDropped = errors.New("rpc: message dropped")
)

// Sized is implemented by messages that know their wire size; it drives
// flow-control accounting and the bandwidth latency term. Messages that
// do not implement it are accounted at a nominal size.
type Sized interface{ WireSize() int }

const nominalMessageSize = 256

func sizeOf(m any) int {
	if s, ok := m.(Sized); ok {
		return s.WireSize()
	}
	return nominalMessageSize
}

// Chaos injects scheduled failures at named transport cut-points. It is
// satisfied by *chaos.Schedule; declaring the interface here keeps the
// dependency arrow pointing from chaos consumers to their wiring
// (internal/core) rather than from rpc to chaos.
type Chaos interface {
	Inject(ctx context.Context, point, target string) error
}

// Cut-point names used by this package.
const (
	ChaosPointRequest    = "rpc.request"
	ChaosPointResponse   = "rpc.response"
	ChaosPointStreamSend = "rpc.stream.send"
	ChaosPointStreamResp = "rpc.stream.response"
)

// UnaryHandler serves one request/response call.
type UnaryHandler func(ctx context.Context, req any) (any, error)

// StreamHandler serves one bi-directional stream until it returns.
type StreamHandler func(ctx context.Context, stream ServerStream) error

// Server is a set of registered method handlers.
type Server struct {
	mu      sync.RWMutex
	unary   map[string]UnaryHandler
	streams map[string]StreamHandler
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{unary: make(map[string]UnaryHandler), streams: make(map[string]StreamHandler)}
}

// RegisterUnary installs a unary handler for method.
func (s *Server) RegisterUnary(method string, h UnaryHandler) {
	s.mu.Lock()
	s.unary[method] = h
	s.mu.Unlock()
}

// RegisterStream installs a stream handler for method.
func (s *Server) RegisterStream(method string, h StreamHandler) {
	s.mu.Lock()
	s.streams[method] = h
	s.mu.Unlock()
}

func (s *Server) unaryHandler(method string) (UnaryHandler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.unary[method]
	return h, ok
}

func (s *Server) streamHandler(method string) (StreamHandler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.streams[method]
	return h, ok
}

// Stats counts transport activity, used by the unary-vs-bidi experiment.
type Stats struct {
	UnaryCalls       int64
	ConnectionSetups int64
	PooledReuses     int64
	StreamsOpened    int64
	StreamMessages   int64
}

// Network connects clients to named servers.
type Network struct {
	mu          sync.Mutex
	servers     map[string]*Server
	partitioned map[string]bool
	idleConns   map[string]int // per-address pooled idle connections

	sampler *latencymodel.Sampler
	chaos   Chaos

	unaryCalls  metrics.Counter
	setups      metrics.Counter
	reuses      metrics.Counter
	streams     metrics.Counter
	streamMsgs  metrics.Counter
	maxIdlePool int
}

// NewNetwork returns a network. sampler may be nil for zero latency.
func NewNetwork(sampler *latencymodel.Sampler) *Network {
	return &Network{
		servers:     make(map[string]*Server),
		partitioned: make(map[string]bool),
		idleConns:   make(map[string]int),
		sampler:     sampler,
		maxIdlePool: 32,
	}
}

// Register attaches a server at addr, replacing any previous one.
func (n *Network) Register(addr string, s *Server) {
	n.mu.Lock()
	n.servers[addr] = s
	n.mu.Unlock()
}

// Deregister removes the server at addr (a crashed task). In-flight
// streams to it fail on their next operation.
func (n *Network) Deregister(addr string) {
	n.mu.Lock()
	delete(n.servers, addr)
	delete(n.idleConns, addr)
	n.mu.Unlock()
}

// SetChaos installs a fault-injection schedule on the transport. A nil
// schedule (the default) injects nothing.
func (n *Network) SetChaos(c Chaos) {
	n.mu.Lock()
	n.chaos = c
	n.mu.Unlock()
}

func (n *Network) inject(ctx context.Context, point, target string) error {
	n.mu.Lock()
	c := n.chaos
	n.mu.Unlock()
	if c == nil {
		return nil
	}
	err := c.Inject(ctx, point, target)
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrDropped, err)
}

// SetPartitioned makes addr unreachable (or reachable again) without
// removing its server, modelling a network partition.
func (n *Network) SetPartitioned(addr string, v bool) {
	n.mu.Lock()
	n.partitioned[addr] = v
	n.mu.Unlock()
}

// Stats returns a snapshot of the transport counters.
func (n *Network) Stats() Stats {
	return Stats{
		UnaryCalls:       n.unaryCalls.Value(),
		ConnectionSetups: n.setups.Value(),
		PooledReuses:     n.reuses.Value(),
		StreamsOpened:    n.streams.Value(),
		StreamMessages:   n.streamMsgs.Value(),
	}
}

// has reports whether a server is registered at addr (used by the TCP
// transport to dispatch locally-hosted addresses without a socket hop).
func (n *Network) has(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.servers[addr]
	return ok
}

func (n *Network) lookup(addr string) (*Server, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned[addr] {
		return nil, fmt.Errorf("%w: %s is partitioned", ErrUnreachable, addr)
	}
	s, ok := n.servers[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	return s, nil
}

func (n *Network) hop(size int) {
	if n.sampler == nil {
		return
	}
	latencymodel.Sleep(n.sampler.RPCHop())
}

// Unary performs one request/response call, reusing a pooled connection
// when one is idle and paying connection setup otherwise.
func (n *Network) Unary(ctx context.Context, addr, method string, req any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	srv, err := n.lookup(addr)
	if err != nil {
		return nil, err
	}
	h, ok := srv.unaryHandler(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoMethod, addr, method)
	}
	// Connection pool: take an idle connection or set up a new one.
	n.mu.Lock()
	if n.idleConns[addr] > 0 {
		n.idleConns[addr]--
		n.mu.Unlock()
		n.reuses.Add(1)
	} else {
		n.mu.Unlock()
		n.setups.Add(1)
		if n.sampler != nil {
			latencymodel.Sleep(n.sampler.ConnectionSetup())
		}
	}
	n.unaryCalls.Add(1)
	n.hop(sizeOf(req))
	// Chaos cut-point: the request may be dropped (or delayed) before the
	// server sees it — the write never happens.
	if err := n.inject(ctx, ChaosPointRequest, addr+"/"+method); err != nil {
		return nil, err
	}
	resp, err := h(ctx, req)
	if err == nil {
		// Chaos cut-point: the response may be lost after the server acted
		// — the caller must retry an operation that already happened.
		if cerr := n.inject(ctx, ChaosPointResponse, addr+"/"+method); cerr != nil {
			return nil, cerr
		}
	}
	n.hop(sizeOf(resp))
	// Return the connection to the pool.
	n.mu.Lock()
	if n.idleConns[addr] < n.maxIdlePool {
		n.idleConns[addr]++
	}
	n.mu.Unlock()
	return resp, err
}

// streamCore is the shared state of one bi-directional stream.
type streamCore struct {
	net  *Network
	addr string

	mu           sync.Mutex
	sendQ        []any // client -> server
	recvQ        []any // server -> client
	inflight     int   // bytes sent by client, not yet received by server
	respInflight int   // bytes sent by server, not yet received by client
	window       int
	sendDone     bool  // client called CloseSend
	closed       bool  // stream torn down
	err          error // terminal error
	cond         *sync.Cond
}

func (c *streamCore) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// memClientStream is the in-memory transport's client stream end.
type memClientStream struct {
	core   *streamCore
	cancel context.CancelFunc
	doneCh chan struct{} // closed when the handler returns
}

// memServerStream is the in-memory transport's server stream end.
type memServerStream struct {
	core *streamCore
}

// OpenStream establishes a long-lived bi-directional stream to
// addr/method with the given flow-control window in bytes. The handler
// runs in its own goroutine until it returns or the stream is closed.
func (n *Network) OpenStream(ctx context.Context, addr, method string, window int) (ClientStream, error) {
	if window <= 0 {
		return nil, errors.New("rpc: flow-control window must be positive")
	}
	srv, err := n.lookup(addr)
	if err != nil {
		return nil, err
	}
	h, ok := srv.streamHandler(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoMethod, addr, method)
	}
	n.streams.Add(1)
	n.setups.Add(1)
	if n.sampler != nil {
		latencymodel.Sleep(n.sampler.ConnectionSetup())
	}
	core := &streamCore{net: n, addr: addr, window: window}
	core.cond = sync.NewCond(&core.mu)
	sctx, cancel := context.WithCancel(ctx)
	cs := &memClientStream{core: core, cancel: cancel, doneCh: make(chan struct{})}
	ss := &memServerStream{core: core}
	go func() {
		defer close(cs.doneCh)
		err := h(sctx, ss)
		if err == nil {
			err = io.EOF
		}
		core.fail(err)
		cancel()
	}()
	// Tear the stream down if the context is cancelled.
	go func() {
		<-sctx.Done()
		core.fail(context.Cause(sctx))
	}()
	return cs, nil
}

// Send transmits one request to the server, blocking while the
// flow-control window is exhausted — this is how the Stream Server
// "throttles incoming appends when there is a large amount of data
// in-flight" (§5.4.2).
func (cs *memClientStream) Send(m any) error {
	size := sizeOf(m)
	c := cs.core
	// Partition check on every message: a long-lived stream dies when
	// the network does.
	if _, err := c.net.lookup(c.addr); err != nil {
		c.fail(err)
		return err
	}
	if err := c.net.inject(context.Background(), ChaosPointStreamSend, c.addr); err != nil {
		return err
	}
	c.net.hop(size)
	c.mu.Lock()
	// The window bounds *buffered* bytes, HTTP/2-style: a message larger
	// than the whole window is still admitted once nothing else is in
	// flight, so an undersized window degrades to lock-step transfer
	// instead of wedging the stream.
	for !c.closed && !c.sendDone && c.inflight+size > c.window && c.inflight > 0 {
		c.cond.Wait()
	}
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == io.EOF {
			err = ErrClosed
		}
		return err
	}
	if c.sendDone {
		c.mu.Unlock()
		return ErrClosed
	}
	c.inflight += size
	c.sendQ = append(c.sendQ, m)
	c.net.streamMsgs.Add(1)
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// Recv returns the next response from the server, releasing its
// flow-control credit so the server may push more. It returns io.EOF
// when the handler finished cleanly and no responses remain.
func (cs *memClientStream) Recv() (any, error) {
	c := cs.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.recvQ) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.recvQ) > 0 {
		m := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		c.respInflight -= sizeOf(m)
		c.cond.Broadcast()
		return m, nil
	}
	return nil, c.err
}

// CloseSend signals that the client will send no more requests; the
// server's Recv returns io.EOF after draining.
func (cs *memClientStream) CloseSend() {
	c := cs.core
	c.mu.Lock()
	c.sendDone = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Close tears down the stream and waits for the handler to return.
func (cs *memClientStream) Close() {
	cs.core.fail(ErrClosed)
	cs.cancel()
	<-cs.doneCh
}

// Err returns the stream's terminal error, if any (io.EOF for a clean
// handler completion).
func (cs *memClientStream) Err() error {
	c := cs.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Recv returns the next request from the client, blocking until one is
// available. Receiving releases the message's flow-control credit. It
// returns io.EOF after the client calls CloseSend and the queue drains.
func (ss *memServerStream) Recv() (any, error) {
	c := ss.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.sendQ) == 0 && !c.closed && !c.sendDone {
		c.cond.Wait()
	}
	if len(c.sendQ) > 0 {
		m := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		c.inflight -= sizeOf(m)
		c.cond.Broadcast()
		return m, nil
	}
	if c.closed && c.err != nil && c.err != io.EOF && !errors.Is(c.err, ErrClosed) {
		return nil, c.err
	}
	return nil, io.EOF
}

// Send transmits one response to the client, blocking while the
// response-direction flow-control window is exhausted. This is the
// server-side mirror of ClientStream.Send: a slow reader draining a
// record-batch stream throttles the server instead of letting it queue
// unbounded bytes in transit.
func (ss *memServerStream) Send(m any) error {
	size := sizeOf(m)
	c := ss.core
	// Chaos cut-point: a response may be lost mid-stream after the server
	// produced it — the reader must resume from its last checkpoint.
	if err := c.net.inject(context.Background(), ChaosPointStreamResp, c.addr); err != nil {
		return err
	}
	c.net.hop(size)
	c.mu.Lock()
	defer c.mu.Unlock()
	// As in ClientStream.Send, the window bounds buffered bytes: an
	// oversized response is admitted once the direction is idle rather
	// than failing the stream.
	for !c.closed && c.respInflight+size > c.window && c.respInflight > 0 {
		c.cond.Wait()
	}
	if c.closed {
		if c.err != nil && c.err != io.EOF {
			return c.err
		}
		return ErrClosed
	}
	c.respInflight += size
	c.recvQ = append(c.recvQ, m)
	c.net.streamMsgs.Add(1)
	c.cond.Broadcast()
	return nil
}

// InflightBytes reports the bytes currently counted against the
// flow-control window (observable by tests and the Stream Server).
func (ss *memServerStream) InflightBytes() int {
	c := ss.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// ResponseInflightBytes reports the bytes currently counted against the
// response-direction window.
func (ss *memServerStream) ResponseInflightBytes() int {
	c := ss.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.respInflight
}
