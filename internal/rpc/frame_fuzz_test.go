package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzDecodeFrame drives arbitrary bytes through the frame decoder — the
// exact validation path a TCP connection reader runs on hostile input.
// The decoder must never panic or over-read, and any frame it accepts
// must re-encode to the identical bytes (the format is canonical).
func FuzzDecodeFrame(f *testing.F) {
	valid := appendFrame(nil, ftUnaryReq, 42, []byte("hello vortex"))
	f.Add(valid)
	f.Add(valid[:frameHeaderLen-3]) // truncated header
	f.Add(valid[:len(valid)-4])     // truncated payload

	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xff
	f.Add(badCRC)

	oversize := appendFrame(nil, ftStreamMsg, 7, nil)
	binary.BigEndian.PutUint32(oversize[8:12], maxFramePayload+1)
	f.Add(oversize)

	f.Add(appendFrame(nil, ftWindow, 9, nil)) // zero-length payload

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'Z'
	f.Add(badMagic)

	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 99
	f.Add(badVersion)

	badType := append([]byte(nil), valid...)
	badType[3] = 0
	f.Add(badType)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := decodeFrame(b)
		if err != nil {
			if !errors.Is(err, errBadFrame) {
				t.Fatalf("decode error is not errBadFrame: %v", err)
			}
			return
		}
		if n < frameHeaderLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if fr.typ < ftUnaryReq || fr.typ > ftHandlerDone {
			t.Fatalf("accepted unknown frame type %d", fr.typ)
		}
		if len(fr.payload) != n-frameHeaderLen {
			t.Fatalf("payload length %d inconsistent with consumed %d", len(fr.payload), n)
		}
		if crc32.Checksum(fr.payload, crcTable) != binary.BigEndian.Uint32(b[12:16]) {
			t.Fatal("accepted payload whose checksum does not match header")
		}
		if re := appendFrame(nil, fr.typ, fr.id, fr.payload); !bytes.Equal(re, b[:n]) {
			t.Fatal("accepted frame does not re-encode canonically")
		}
	})
}
