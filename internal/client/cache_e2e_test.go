package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/optimizer"
	"vortex/internal/schema"
	"vortex/internal/streamserver"
	"vortex/internal/wire"
)

// cacheEnv builds a region plus a caching client over a clustered k/v
// table, mirroring the GC lifecycle choreography in internal/sms.
func cacheEnv(t *testing.T) (*core.Region, *client.Client, context.Context) {
	t.Helper()
	r := core.NewRegion(core.DefaultConfig())
	opts := client.DefaultOptions()
	opts.ReadCacheBytes = 32 << 20
	c := r.NewClient(opts)
	ctx := context.Background()
	sc := &schema.Schema{
		Fields: []*schema.Field{
			{Name: "k", Kind: schema.KindString, Mode: schema.Required},
			{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
		},
		ClusterBy: []string{"k"},
	}
	if err := c.CreateTable(ctx, "d.cache", sc); err != nil {
		t.Fatal(err)
	}
	return r, c, ctx
}

func ingestRound(t *testing.T, ctx context.Context, c *client.Client, base, n int) meta.StreamID {
	t.Helper()
	s, err := c.CreateStream(ctx, "d.cache", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for i := 0; i < n; i++ {
		rows = append(rows, schema.NewRow(schema.String("key"), schema.Int64(int64(base+i))))
	}
	if _, err := s.Append(ctx, rows, client.AtOffset(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	return s.Info().ID
}

// TestReadCacheServesRepeatedScans seals a streamlet and reads it
// twice: the second scan must be served from the cache (hits and bytes
// saved accrue) and return the same rows.
func TestReadCacheServesRepeatedScans(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	first, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 30 || len(second) != 30 {
		t.Fatalf("reads returned %d then %d rows, want 30", len(first), len(second))
	}
	st := c.ReadCache().Stats()
	if st.Misses == 0 {
		t.Fatal("first scan should have populated the cache (misses = 0)")
	}
	if st.Hits == 0 || st.BytesSaved == 0 {
		t.Fatalf("second scan should hit: %+v", st)
	}
}

// TestReadCacheInvalidatedByHeartbeatGC proves the no-stale-read
// property for the heartbeat-driven GC path (§5.4.3): once conversion
// retires the WOS fragments and the stream servers delete their files,
// the cached copies must be invalidated — Spanner is MVCC, so an
// old-snapshot read view still lists the GC'd fragments and only
// invalidation stops the cache from serving their bytes forever.
func TestReadCacheInvalidatedByHeartbeatGC(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	streamID := ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	// Populate the sealed-WOS cache and capture the pre-conversion
	// snapshot.
	rows, plan, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 30 {
		t.Fatalf("pre-GC read: %d rows, err=%v", len(rows), err)
	}
	oldTS := plan.SnapshotTS
	wosPrefix := streamserver.StreamletPrefix("d.cache", meta.StreamletIDFor(streamID, 0))
	wosPaths, err := r.Colossus.Cluster("alpha").List(wosPrefix)
	if err != nil || len(wosPaths) == 0 {
		t.Fatalf("no WOS files: %v %v", wosPaths, err)
	}
	cached := 0
	for _, p := range wosPaths {
		if c.ReadCache().Contains(p) {
			cached++
		}
	}
	if cached == 0 {
		t.Fatal("sealed WOS fragments were not cached by the first scan")
	}

	// Let the captured snapshot fall strictly before the conversion's
	// commit (oldTS includes +epsilon uncertainty), so the old read view
	// deterministically lists the WOS fragments, not their replacement.
	time.Sleep(12 * time.Millisecond)
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	// Wait out clock uncertainty, then two full heartbeats: instruct
	// deletion, then ack it (files are gone after the first).
	time.Sleep(12 * time.Millisecond)
	r.HeartbeatAll(ctx, true)
	r.HeartbeatAll(ctx, true)

	st := c.ReadCache().Stats()
	if st.Invalidations == 0 {
		t.Fatal("file GC did not invalidate the cache")
	}
	for _, p := range wosPaths {
		if c.ReadCache().Contains(p) {
			t.Fatalf("GC'd fragment %s still cached", p)
		}
	}
	// A current-snapshot read is served by the ROS generation.
	rows, _, err = c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 30 {
		t.Fatalf("post-GC read: %d rows, err=%v", len(rows), err)
	}
	// The old snapshot predates the conversion, so its MVCC read view
	// still lists the WOS fragments — whose files and cache entries are
	// gone. The read must fail with a per-replica file-not-found, never
	// silently serve stale cached bytes.
	_, _, err = c.ReadAll(ctx, "d.cache", oldTS)
	if err == nil {
		t.Fatal("old-snapshot read after file GC must fail, not serve the cache")
	}
	var rre *client.ReplicatedReadError
	if !errors.As(err, &rre) {
		t.Fatalf("old-snapshot read error = %T (%v), want *client.ReplicatedReadError", err, err)
	}
	for _, p := range wosPaths {
		if c.ReadCache().Contains(p) {
			t.Fatalf("old-snapshot read resurrected GC'd fragment %s in the cache", p)
		}
	}
}

// TestReadCacheInvalidatedByGroomerGC proves the same property for the
// groomer path: a forced recluster retires the first ROS generation, a
// grooming cycle deletes its files, and the cached readers for those
// fragments must be dropped.
func TestReadCacheInvalidatedByGroomerGC(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	// Cache the first ROS generation's readers.
	if rows, _, err := c.ReadAll(ctx, "d.cache", 0); err != nil || len(rows) != 30 {
		t.Fatalf("ROS read: %d rows, err=%v", len(rows), err)
	}
	gen1, _ := r.Colossus.Cluster("alpha").List("ros/d.cache/")
	cachedGen1 := 0
	for _, p := range gen1 {
		if c.ReadCache().Contains(p) {
			cachedGen1++
		}
	}
	if cachedGen1 == 0 {
		t.Fatal("ROS fragments were not cached by the scan")
	}

	// A second overlapping round becomes a delta; the forced recluster
	// retires generation one, and the groomer collects its files.
	ingestRound(t, ctx, c, 100, 10)
	r.HeartbeatAll(ctx, true)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	if merged, err := opt.Recluster(ctx, "d.cache", true); err != nil || merged == 0 {
		t.Fatalf("recluster: merged=%d err=%v", merged, err)
	}
	time.Sleep(12 * time.Millisecond)
	addr, err := r.Router().SMSFor("d.cache")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := r.Net.Unary(ctx, addr, wire.MethodGC, &wire.GCRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*wire.GCResponse).FragmentsDeleted == 0 {
		t.Fatal("groomer collected nothing after recluster")
	}

	if st := c.ReadCache().Stats(); st.Invalidations == 0 {
		t.Fatal("groomer GC did not invalidate the cache")
	}
	stale := 0
	for _, p := range gen1 {
		if !r.Colossus.Cluster("alpha").Exists(p) && c.ReadCache().Contains(p) {
			stale++
		}
	}
	if stale > 0 {
		t.Fatalf("%d deleted generation-one fragments still cached", stale)
	}
	// The merged generation serves the full row set.
	rows, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 40 {
		t.Fatalf("post-groom read: %d rows, err=%v", len(rows), err)
	}
}
