package client

import (
	"context"
	"sort"
	"strings"
	"time"

	"vortex/internal/meta"
	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/wire"
)

// ColBatch is one assignment's scan result in batch form — the native
// currency of the vectorized read path. ROS fragments with flat
// projected columns come back columnar: encoded vectors handed
// zero-copy from the read cache, with the deletion mask folded into a
// selection vector. Everything else (WOS files, nested schemas) comes
// back in row form; the two forms flow through the same pipeline and
// the consumer picks per batch. Columnar contents are shared with the
// cache and are read-only.
type ColBatch struct {
	// FragID identifies the source fragment.
	FragID meta.FragmentID
	// NumRows is the physical row count of the fragment (columnar form).
	NumRows int
	// Cols are the projected columns as encoded vectors; ColIdx maps
	// each to its top-level field index in the scan schema.
	Cols   []wire.Vector
	ColIdx []int
	// Seqs and Changes are the per-physical-row storage sequences and
	// change types (columnar form; shared with the cached reader).
	Seqs    []int64
	Changes []byte
	// Sel selects the visible physical rows after the deletion mask;
	// nil selects all.
	Sel wire.Selection
	// Arity is the full schema arity rows materialize to.
	Arity int

	// Rows is the row-form fallback; when set the columnar fields are
	// empty and the rows are already visibility-filtered.
	Rows []PosRow

	columnar bool
}

// Columnar reports whether the batch carries encoded vectors (true)
// or pre-assembled rows (false).
func (b *ColBatch) Columnar() bool { return b.columnar }

// NumVisible returns the number of mask-visible rows.
func (b *ColBatch) NumVisible() int {
	if !b.columnar {
		return len(b.Rows)
	}
	if b.Sel == nil {
		return b.NumRows
	}
	return len(b.Sel)
}

// PosRows materializes the batch's visible rows with provenance,
// matching ScanDetailed's output for the same assignment. Row form
// returns the existing slice; columnar form decodes every visible row
// (callers wanting late materialization should consume the vectors
// directly).
func (b *ColBatch) PosRows() []PosRow {
	if !b.columnar {
		return b.Rows
	}
	out := make([]PosRow, 0, b.NumVisible())
	emit := func(i int32) {
		vals := make([]schema.Value, b.Arity)
		for k := range vals {
			vals[k] = schema.Null()
		}
		for k, v := range b.Cols {
			vals[b.ColIdx[k]] = v.ValueAt(int(i))
		}
		out = append(out, PosRow{
			Stamped: rowenc.Stamped{
				Row: schema.Row{Values: vals, Change: schema.ChangeType(b.Changes[i])},
				Seq: b.Seqs[i],
			},
			FragID:       b.FragID,
			FragLocal:    int64(i),
			StreamOffset: -1,
		})
	}
	if b.Sel == nil {
		for i := 0; i < b.NumRows; i++ {
			emit(int32(i))
		}
	} else {
		for _, i := range b.Sel {
			emit(i)
		}
	}
	return out
}

// ScanBatch reads one assignment in batch form. Immutable ROS
// fragments whose projected columns are all flat return the cached
// reader's encoded vectors without materializing a single row; WOS
// files and nested schemas fall back to ScanDetailed rows inside the
// same ColBatch envelope.
func (c *Client) ScanBatch(ctx context.Context, plan *ScanPlan, a Assignment) (*ColBatch, error) {
	if a.Frag.Format == meta.ROS && !a.Live {
		start := time.Now()
		rd, err := c.rosReader(a)
		if err != nil {
			return nil, err
		}
		vecs, idxs, ok, err := rd.Vectors(plan.Schema, plan.Projection)
		if err != nil {
			return nil, err
		}
		if ok {
			b := &ColBatch{
				FragID:   a.Frag.ID,
				NumRows:  int(rd.RowCount()),
				Cols:     vecs,
				ColIdx:   idxs,
				Seqs:     rd.Seqs(),
				Changes:  rd.Changes(),
				Arity:    len(plan.Schema.Fields),
				columnar: true,
			}
			if !a.Mask.Empty() {
				sel := make(wire.Selection, 0, b.NumRows)
				for i := 0; i < b.NumRows; i++ {
					if !a.Mask.Deleted(int64(i)) {
						sel = append(sel, int32(i))
					}
				}
				b.Sel = sel
			}
			c.scanLatency.Record(time.Since(start))
			return b, nil
		}
	}
	rows, err := c.ScanDetailed(ctx, plan, a)
	if err != nil {
		return nil, err
	}
	return &ColBatch{FragID: a.Frag.ID, Rows: rows}, nil
}

// projectionKey renders a canonical memo key for a projection set.
func projectionKey(projection map[string]bool) string {
	if projection == nil {
		return "*"
	}
	cols := make([]string, 0, len(projection))
	for c := range projection {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return strings.Join(cols, ",")
}
