package client

import "sync"

// defaultPrefetchInFlight bounds concurrent prefetch fetches when the
// option is unset.
const defaultPrefetchInFlight = 4

// Prefetch asynchronously warms the disk tier with the raw bytes of the
// given assignments' fragments, so the scanner that follows hits local
// disk instead of paying simulated-Colossus latency — the GPU-Vortex
// trick of decoupling IO from compute, one level down the hierarchy.
//
// Live assignments are skipped (their files are still being appended
// to), as are fragments already resident in either tier. At most
// Options.PrefetchInFlight fetches run concurrently; each goes through
// fragmentBytes, so a demand scan racing the prefetcher coalesces onto
// the same flight instead of fetching twice.
//
// Prefetch returns immediately; the channel closes when every candidate
// has been fetched or skipped (tests and benchmarks use it to warm
// deterministically — production callers just drop it).
func (c *Client) Prefetch(as []Assignment) <-chan struct{} {
	done := make(chan struct{})
	tier := c.cache.Disk()
	if tier == nil {
		close(done)
		return done
	}
	budget := c.opts.PrefetchInFlight
	if budget <= 0 {
		budget = defaultPrefetchInFlight
	}
	sem := make(chan struct{}, budget)
	var wg sync.WaitGroup
	for _, a := range as {
		if a.Live || a.Frag.Path == "" {
			continue
		}
		if c.cache.Contains(a.Frag.Path) || tier.Contains(a.Frag.Path) {
			tier.CountPrefetchSkipped()
			continue
		}
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if tier.Contains(a.Frag.Path) {
				// Another prefetch or a demand scan got there first.
				tier.CountPrefetchSkipped()
				return
			}
			if _, err := c.fragmentBytes(a.Frag.Clusters, a.Frag.Path); err == nil {
				tier.CountPrefetchFetched()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	return done
}
