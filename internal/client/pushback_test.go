package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/schema"
	"vortex/internal/sms"
	"vortex/internal/truetime"
)

// TestPushBackHintNeverRetriedSooner pins the admission-control contract
// between server and client: a RESOURCE_EXHAUSTED push-back carries a
// server-suggested backoff, and the client's retry loop must never fire
// the next attempt sooner than that hint — whatever its own (much
// shorter) exponential schedule says.
//
// The region runs on a frozen TrueTime clock, so the shed instruction
// never expires and every attempt is pushed back with the same hint;
// the client's sleeps are real time, so the call's wall-clock duration
// is a direct measurement of the floors it honored.
func TestPushBackHintNeverRetriedSooner(t *testing.T) {
	cases := []struct {
		name     string
		hint     time.Duration // MaxShed == the hint while the deficit is large
		attempts int
	}{
		{"two-retries", 60 * time.Millisecond, 3},
		{"single-retry", 40 * time.Millisecond, 2},
		{"deep-retry", 20 * time.Millisecond, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Clock = truetime.NewManual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond)
			cfg.Quotas = sms.Quotas{
				TableBytesPerSec: 1 << 10,
				ByteBurst:        1 << 10,
				MaxShed:          tc.hint,
			}
			r := core.NewRegion(cfg)
			opts := client.DefaultOptions()
			opts.Retry = client.RetryPolicy{
				// Backoff schedule far below the hint: if the measured
				// elapsed time reaches (attempts-1)×hint, it was the hint
				// that set the pace, not the schedule.
				MaxAttempts:    tc.attempts,
				InitialBackoff: 100 * time.Microsecond,
				MaxBackoff:     time.Millisecond,
				Multiplier:     2,
				RetryBudget:    -1,
			}
			c := r.NewClient(opts)
			ctx := context.Background()
			sc := &schema.Schema{Fields: []*schema.Field{
				{Name: "k", Kind: schema.KindString, Mode: schema.Required},
				{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
			}}
			if err := c.CreateTable(ctx, "d.push", sc); err != nil {
				t.Fatal(err)
			}
			st, err := c.CreateStream(ctx, "d.push", meta.Unbuffered)
			if err != nil {
				t.Fatal(err)
			}
			// Blow far past the byte budget: ~64KiB against 1KiB/s leaves a
			// deficit whose shed duration clamps to exactly MaxShed.
			big := schema.NewRow(schema.String(strings.Repeat("x", 4096)), schema.Int64(0))
			rows := make([]schema.Row, 16)
			for i := range rows {
				rows[i] = big
			}
			if _, err := st.Append(ctx, rows, client.AtOffset(0)); err != nil {
				t.Fatalf("over-quota append (accepted, debited later): %v", err)
			}
			// The heartbeat reports the bytes; the SMS answers with a shed
			// instruction the server holds until the (frozen) clock passes it.
			r.HeartbeatAll(ctx, false)

			start := time.Now()
			_, err = st.Append(ctx, []schema.Row{row(1)}, client.AtOffset(int64(len(rows))))
			elapsed := time.Since(start)

			if !errors.Is(err, client.ErrResourceExhausted) {
				t.Fatalf("shed append: got %v, want ErrResourceExhausted", err)
			}
			var ce *client.Error
			if !errors.As(err, &ce) {
				t.Fatalf("shed error not typed: %v", err)
			}
			if !ce.Retryable || ce.Code != client.CodeResourceExhausted {
				t.Fatalf("shed error not retryable RESOURCE_EXHAUSTED: %+v", ce)
			}
			if ce.RetryAfter <= 0 {
				t.Fatalf("RetryAfter = %v, want > 0", ce.RetryAfter)
			}
			// Every attempt was pushed back, so every retry slept at least
			// the full hint — the whole call cannot be faster than
			// (attempts-1) hints back to back.
			if floor := time.Duration(tc.attempts-1) * tc.hint; elapsed < floor {
				t.Fatalf("retried sooner than the hint: %d attempts with a %v hint took %v, want ≥ %v",
					tc.attempts, tc.hint, elapsed, floor)
			}
			if got := c.Metrics().ShedPushBacks; got != int64(tc.attempts) {
				t.Fatalf("ShedPushBacks = %d, want %d (one per attempt)", got, tc.attempts)
			}
		})
	}
}
