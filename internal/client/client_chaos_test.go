package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vortex/internal/chaos"
	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/schema"
)

func chaosEnv(t *testing.T, sched *chaos.Schedule, opts client.Options) (*core.Region, *client.Client, context.Context) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Chaos = sched
	r := core.NewRegion(cfg)
	c := r.NewClient(opts)
	ctx := context.Background()
	sc := &schema.Schema{Fields: []*schema.Field{
		{Name: "k", Kind: schema.KindString, Mode: schema.Required},
		{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
	}}
	if err := c.CreateTable(ctx, "d.t", sc); err != nil {
		t.Fatal(err)
	}
	return r, c, ctx
}

// TestRotationAfterMidAppendServerFailure kills the serving Stream
// Server on its 3rd append; the client must rotate the streamlet to a
// different server and complete every append.
func TestRotationAfterMidAppendServerFailure(t *testing.T) {
	// The first placement deterministically lands on ss-alpha-0.
	sched := chaos.NewSchedule(5).CrashStreamServerAt("ss-alpha-0", 3)
	_, c, ctx := chaosEnv(t, sched, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Append(ctx, []schema.Row{row(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	m := c.Metrics()
	if m.Rotations == 0 {
		t.Fatal("server crash mid-append must rotate the streamlet")
	}
	if m.Retries == 0 {
		t.Fatal("server crash mid-append must be retried")
	}
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("read %d rows, want 6", len(rows))
	}
}

// TestFlushAndFinalizeUnderRetry drops the first FlushStream and the
// first FinalizeStream request; both operations are idempotent at the
// SMS and must succeed through the retry helper.
func TestFlushAndFinalizeUnderRetry(t *testing.T) {
	sched := chaos.NewSchedule(9).
		FailAt(chaos.PointRPCRequest, "*/FlushStream", 1).
		FailAt(chaos.PointRPCRequest, "*/FinalizeStream", 1)
	_, c, ctx := chaosEnv(t, sched, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Buffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Append(ctx, []schema.Row{row(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Flush(ctx, 4); err != nil {
		t.Fatalf("flush must survive a dropped request: %v", err)
	}
	n, err := s.Finalize(ctx)
	if err != nil {
		t.Fatalf("finalize must survive a dropped request: %v", err)
	}
	if n != 4 {
		t.Fatalf("finalized row count %d, want 4", n)
	}
	if c.Metrics().SMSRetries == 0 {
		t.Fatal("dropped control-plane requests must be counted as SMS retries")
	}
}

// TestReplicaFailoverOnRead poisons every Colossus read on the alpha
// cluster after ingest: the replicated read path must fail over to beta
// and serve every row. Chaos is attached after setup so ingest-side
// file creation is unaffected.
func TestReplicaFailoverOnRead(t *testing.T) {
	r, c, ctx := chaosEnv(t, nil, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(ctx, []schema.Row{row(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	r.Colossus.Cluster("alpha").SetChaos(
		chaos.NewSchedule(3).FailBetween(chaos.PointColossusRead, "alpha", 1, 1<<30))
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatalf("read must fail over to the healthy replica: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("read %d rows, want 5", len(rows))
	}
}

// TestReplicatedReadErrorBothReplicasDown poisons reads on both
// clusters: the read must fail with a ReplicatedReadError that names
// each replica's failure (the §5.6 outage-window diagnosis) and is
// classified retryable, with no replica reported as unknown.
func TestReplicatedReadErrorBothReplicasDown(t *testing.T) {
	r, c, ctx := chaosEnv(t, nil, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{row(0)}, client.AtOffset(0)); err != nil {
		t.Fatal(err)
	}
	r.Colossus.SetChaos(chaos.NewSchedule(4).
		FailBetween(chaos.PointColossusRead, "alpha", 1, 1<<30).
		FailBetween(chaos.PointColossusRead, "beta", 1, 1<<30))
	_, _, err = c.ReadAll(ctx, "d.t", 0)
	if err == nil {
		t.Fatal("read with both replicas down must fail")
	}
	var rre *client.ReplicatedReadError
	if !errors.As(err, &rre) {
		t.Fatalf("error type = %T (%v), want *client.ReplicatedReadError", err, err)
	}
	if len(rre.Unknown) != 0 {
		t.Fatalf("replicas wrongly reported unknown: %v", rre.Unknown)
	}
	if len(rre.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want one per replica", rre.Attempts)
	}
	seen := map[string]bool{}
	for _, a := range rre.Attempts {
		seen[a.Cluster] = true
		if a.Err == nil {
			t.Fatalf("attempt %s carries no cause", a.Cluster)
		}
	}
	if !seen["alpha"] || !seen["beta"] {
		t.Fatalf("attempts name %v, want alpha and beta", rre.Attempts)
	}
}

// TestHedgedAppendDedupes enables aggressive hedging with injected
// latency spikes on appends: hedges fire, and offset pinning plus the
// server's retransmission memo keep the result exactly-once.
func TestHedgedAppendDedupes(t *testing.T) {
	sched := chaos.NewSchedule(13).
		DelayAt(chaos.PointRPCRequest, "*/Append", 30*time.Millisecond, 2, 5)
	opts := client.DefaultOptions()
	opts.ForceUnary = true
	opts.Retry.HedgeDelay = 2 * time.Millisecond
	_, c, ctx := chaosEnv(t, sched, opts)
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Append(ctx, []schema.Row{row(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if c.Metrics().Hedges == 0 {
		t.Fatal("latency spikes above the hedge delay must trigger hedges")
	}
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("read %d rows, want 8 (hedges must not duplicate)", len(rows))
	}
}
