package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/schema"
)

// The client library's write/read paths are exercised end-to-end by
// internal/core's integration tests; these pin client-local behaviours:
// adaptive connection choice, pipelining, and plan/scan surfaces.

func env(t *testing.T, opts client.Options) (*core.Region, *client.Client, context.Context) {
	t.Helper()
	r := core.NewRegion(core.DefaultConfig())
	c := r.NewClient(opts)
	ctx := context.Background()
	sc := &schema.Schema{Fields: []*schema.Field{
		{Name: "k", Kind: schema.KindString, Mode: schema.Required},
		{Name: "v", Kind: schema.KindInt64, Mode: schema.Nullable},
	}}
	if err := c.CreateTable(ctx, "d.t", sc); err != nil {
		t.Fatal(err)
	}
	return r, c, ctx
}

func row(i int) schema.Row {
	return schema.NewRow(schema.String("k"), schema.Int64(int64(i)))
}

func TestAdaptiveConnectionSwitchesToBidi(t *testing.T) {
	opts := client.DefaultOptions()
	opts.UnaryAppendThreshold = 3
	r, c, ctx := env(t, opts)
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Append(ctx, []schema.Row{row(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Net.Stats()
	if st.StreamsOpened == 0 {
		t.Fatal("client never switched to a bi-di connection (§5.4.2)")
	}
	if st.UnaryCalls < 3 {
		t.Fatalf("expected early appends over unary, stats = %+v", st)
	}
}

func TestPipelinedAppendsCompleteInOrder(t *testing.T) {
	opts := client.DefaultOptions()
	opts.ForceBidi = true
	_, c, ctx := env(t, opts)
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	var pending []*client.PendingAppend
	for i := 0; i < 20; i++ {
		p, err := s.AppendAsync(ctx, []schema.Row{row(i)}, client.AtOffset(-1))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	for i, p := range pending {
		off, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("pipelined append %d landed at %d", i, off)
		}
	}
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestAppendValidatesRowsClientSide(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	bad := schema.NewRow(schema.Int64(1), schema.Int64(2)) // wrong kind for k
	if _, err := s.Append(ctx, []schema.Row{bad}, client.AtOffset(-1)); err == nil {
		t.Fatal("invalid row accepted")
	}
}

func TestPlanCoversWOSAndDiscoversTail(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{row(1), row(2)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Plan(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) == 0 {
		t.Fatal("no assignments for live tail data")
	}
	if !plan.Assignments[0].Live {
		t.Fatal("tail assignment not marked live")
	}
	got, err := c.Scan(ctx, plan, plan.Assignments[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scanned %d rows", len(got))
	}
	// Provenance for DML: stream offsets assigned densely from 0.
	det, err := c.ScanDetailed(ctx, plan, plan.Assignments[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range det {
		if pr.StreamOffset != int64(i) {
			t.Fatalf("row %d stream offset = %d", i, pr.StreamOffset)
		}
	}
}

func TestReadAllOrdersBySequence(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	s1, _ := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	s2, _ := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	for i := 0; i < 5; i++ {
		if _, err := s1.Append(ctx, []schema.Row{row(i)}, client.AtOffset(-1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Append(ctx, []schema.Row{row(100 + i)}, client.AtOffset(-1)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Seq <= rows[i-1].Seq {
			t.Fatal("ReadAll not ordered by storage sequence")
		}
	}
}

func TestAttachUnknownStream(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	if _, err := c.AttachStream(ctx, "s-nope"); err == nil {
		t.Fatal("attached to a stream that does not exist")
	}
}

func TestAppendTrackedReturnsSeq(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	_, seq, err := s.AppendTracked(ctx, []schema.Row{row(1), row(2)}, client.AtOffset(0))
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := c.ReadAll(ctx, "d.t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Seq != seq || rows[1].Seq != seq+1 {
		t.Fatalf("seqs %d,%d vs tracked %d", rows[0].Seq, rows[1].Seq, seq)
	}
}

func TestWrongOffsetDoesNotRetryForever(t *testing.T) {
	_, c, ctx := env(t, client.DefaultOptions())
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{row(1)}, client.AtOffset(0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Append(ctx, []schema.Row{row(1)}, client.AtOffset(0))
	if !errors.Is(err, client.ErrWrongOffset) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("offset conflict took too long: it must fail fast, not rotate streamlets")
	}
}
