package client

import (
	"context"

	"vortex/internal/meta"
	"vortex/internal/rpc"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

// Snapshot-lease control-plane calls, used by the read-session service
// to pin a session's snapshot against physical GC. They ride the same
// retried SMS path as other control-plane calls, so a lease survives an
// SMS failover mid-session.

// AcquireReadLease pins table at snapshotTS (0 = now) for ttl clock
// units (0 = server default), returning the lease id, the pinned
// snapshot and the expiry.
func (c *Client) AcquireReadLease(ctx context.Context, table meta.TableID, snapshotTS, ttl truetime.Timestamp) (string, truetime.Timestamp, truetime.Timestamp, error) {
	resp, err := c.smsRetry(ctx, table, wire.MethodAcquireLease, &wire.AcquireLeaseRequest{
		Table: table, SnapshotTS: snapshotTS, TTL: ttl,
	})
	if err != nil {
		return "", 0, 0, err
	}
	r := resp.(*wire.AcquireLeaseResponse)
	return r.LeaseID, r.SnapshotTS, r.Expires, nil
}

// RenewReadLease extends a lease by ttl from now.
func (c *Client) RenewReadLease(ctx context.Context, table meta.TableID, leaseID string, ttl truetime.Timestamp) (truetime.Timestamp, error) {
	resp, err := c.smsRetry(ctx, table, wire.MethodRenewLease, &wire.RenewLeaseRequest{
		Table: table, LeaseID: leaseID, TTL: ttl,
	})
	if err != nil {
		return 0, err
	}
	return resp.(*wire.RenewLeaseResponse).Expires, nil
}

// ReleaseReadLease drops a lease. Idempotent.
func (c *Client) ReleaseReadLease(ctx context.Context, table meta.TableID, leaseID string) error {
	_, err := c.smsRetry(ctx, table, wire.MethodReleaseLease, &wire.ReleaseLeaseRequest{
		Table: table, LeaseID: leaseID,
	})
	return err
}

// ObserveReadSession feeds read-session consumption deltas into the
// client's metrics: batches and batch bytes delivered, splits
// triggered, checkpoint resumes performed.
func (c *Client) ObserveReadSession(batches, bytes, splits, resumes int64) {
	c.rsBatches.Add(batches)
	c.rsBytes.Add(bytes)
	c.rsSplits.Add(splits)
	c.rsResumes.Add(resumes)
}

// Network exposes the client's transport for sibling services: the
// read-session consumer opens ReadRows streams on it directly.
func (c *Client) Network() rpc.Transport { return c.net }
