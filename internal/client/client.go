// Package client implements the Vortex thick client library (§5.4): the
// write path (stream creation, pipelined appends with offset validation,
// retries that rotate streamlets across Stream Servers, schema refresh,
// adaptive unary/bi-di connections) and the read path (direct-Colossus
// fragment reads, commit-rule tail handling, reconciliation of the final
// append, decryption and decompression).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"vortex/internal/blockenc"
	"vortex/internal/colossus"
	"vortex/internal/disktier"
	"vortex/internal/meta"
	"vortex/internal/metrics"
	"vortex/internal/rowenc"
	"vortex/internal/rpc"
	"vortex/internal/schema"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

// Sentinel errors surfaced by the client API. Structured failures are
// *Error values whose Is method matches these, so errors.Is works on
// both forms.
var (
	ErrWrongOffset     = errors.New("client: append offset does not match stream length")
	ErrStreamFinalized = errors.New("client: stream is finalized")
	ErrExhausted       = errors.New("client: retries exhausted")
	ErrUnavailable     = errors.New("client: service unavailable")
	// ErrResourceExhausted matches admission-control push-back: the
	// request was shed before any durable effect and may be retried
	// after the error's RetryAfter hint.
	ErrResourceExhausted = errors.New("client: resource exhausted")
)

// Router resolves the SMS task for a table (Slicer-backed, §5.2.1).
type Router interface {
	SMSFor(table meta.TableID) (string, error)
}

// Options configures a Client.
type Options struct {
	// LocalCluster is the cluster whose Colossus replica reads prefer
	// (§5.4.6). Empty picks the first cluster of each fragment.
	LocalCluster string
	// UnaryAppendThreshold is the number of appends on a stream before
	// the client switches from pooled unary calls to a persistent
	// bi-directional connection (§5.4.2: most streams are small, hot
	// streams deserve a dedicated connection).
	UnaryAppendThreshold int
	// FlowControlWindow is the bi-di stream's in-flight byte budget.
	FlowControlWindow int
	// ForceUnary/ForceBidi pin the connection type (for experiments).
	ForceUnary bool
	ForceBidi  bool
	// Retry governs append and control-plane retries; zero fields take
	// DefaultRetryPolicy values.
	Retry RetryPolicy
	// Seed makes backoff jitter deterministic (tests, simulations).
	Seed int64
	// ReadCacheBytes bounds the snapshot-safe fragment read cache; 0
	// (the default) disables caching and every scan reads Colossus.
	ReadCacheBytes int64
	// DiskCacheDir/DiskCacheBytes configure an on-disk middle tier under
	// the RAM cache: raw fragment bytes spill to DiskCacheDir (bounded to
	// DiskCacheBytes, LRU) and a RAM miss falls through to disk before
	// paying a Colossus fetch. Both must be set to enable the tier.
	DiskCacheDir   string
	DiskCacheBytes int64
	// DiskCache, when non-nil, is a pre-opened disk tier that takes
	// precedence over DiskCacheDir/DiskCacheBytes — for callers that want
	// to handle disktier.Open errors themselves.
	DiskCache *disktier.Tier
	// PrefetchInFlight bounds concurrent disk-tier prefetch fetches;
	// <= 0 means the default (4).
	PrefetchInFlight int
}

// DefaultOptions returns production-like client options.
func DefaultOptions() Options {
	return Options{UnaryAppendThreshold: 3, FlowControlWindow: 16 << 20, Retry: DefaultRetryPolicy()}
}

// Client is a Vortex client handle. It is safe for concurrent use; each
// Stream it creates is owned by one writer at a time (the paper's model:
// each client appends to its own dedicated stream).
type Client struct {
	net     rpc.Transport
	router  Router
	region  colossus.Store
	keyring *blockenc.Keyring
	clock   truetime.Clock
	opts    Options

	sealer *blockenc.Sealer

	rngMu sync.Mutex
	rng   *rand.Rand

	retries         metrics.Counter
	rotations       metrics.Counter
	hedges          metrics.Counter
	hedgeWins       metrics.Counter
	smsRetries      metrics.Counter
	shedPushBacks   metrics.Counter
	budgetExhausted metrics.Counter
	appendLatency   *metrics.Histogram
	scanLatency     *metrics.Histogram

	// budgetTokens is the retry-budget token bucket (RetryPolicy.
	// RetryBudget); shared across the client's streams so the cap
	// bounds the whole process's retry debt.
	budgetMu     sync.Mutex
	budgetTokens float64

	// Read-session consumption counters, fed by the readsession package
	// through ObserveReadSession.
	rsBatches metrics.Counter
	rsBytes   metrics.Counter
	rsSplits  metrics.Counter
	rsResumes metrics.Counter

	// cache is the snapshot-safe fragment read cache; nil when disabled
	// (a nil *ReadCache no-ops every method).
	cache *ReadCache

	// flight coalesces concurrent miss fills per fragment path so cold
	// scans never stampede Colossus.
	flight flightGroup

	mu      sync.Mutex
	schemas map[meta.TableID]*schema.Schema
}

// New returns a Client.
func New(net rpc.Transport, router Router, region colossus.Store, keyring *blockenc.Keyring, clock truetime.Clock, opts Options) *Client {
	if opts.UnaryAppendThreshold <= 0 {
		opts.UnaryAppendThreshold = 3
	}
	if opts.FlowControlWindow <= 0 {
		opts.FlowControlWindow = 16 << 20
	}
	opts.Retry = opts.Retry.withDefaults()
	disk := opts.DiskCache
	if disk == nil && opts.DiskCacheDir != "" && opts.DiskCacheBytes > 0 {
		// New cannot return an error; an unusable cache directory simply
		// disables the tier.
		disk, _ = disktier.Open(opts.DiskCacheDir, opts.DiskCacheBytes)
	}
	return &Client{
		budgetTokens:  float64(opts.Retry.RetryBudget),
		net:           net,
		router:        router,
		region:        region,
		keyring:       keyring,
		sealer:        blockenc.NewSealer(keyring),
		clock:         clock,
		opts:          opts,
		rng:           newRNG(opts.Seed),
		appendLatency: metrics.NewLatencyHistogram(),
		scanLatency:   metrics.NewLatencyHistogram(),
		cache:         NewTiered(opts.ReadCacheBytes, disk),
		schemas:       make(map[meta.TableID]*schema.Schema),
	}
}

// ReadCache returns the client's fragment read cache, or nil when the
// client was built without ReadCacheBytes. Region wiring registers it
// for GC-driven invalidation.
func (c *Client) ReadCache() *ReadCache { return c.cache }

func (c *Client) sms(ctx context.Context, table meta.TableID, method string, req any) (any, error) {
	addr, err := c.router.SMSFor(table)
	if err != nil {
		return nil, err
	}
	return c.net.Unary(ctx, addr, method, req)
}

// CreateTable creates a table.
func (c *Client) CreateTable(ctx context.Context, table meta.TableID, s *schema.Schema) error {
	_, err := c.sms(ctx, table, wire.MethodCreateTable, &wire.CreateTableRequest{Table: table, Schema: s})
	return err
}

// GetSchema fetches (and caches) a table's current schema.
func (c *Client) GetSchema(ctx context.Context, table meta.TableID) (*schema.Schema, error) {
	resp, err := c.sms(ctx, table, wire.MethodGetTable, &wire.GetTableRequest{Table: table})
	if err != nil {
		return nil, err
	}
	sc := resp.(*wire.GetTableResponse).Schema
	c.mu.Lock()
	c.schemas[table] = sc
	c.mu.Unlock()
	return sc, nil
}

// UpdateSchema adds a field to the table schema (§5.4.1).
func (c *Client) UpdateSchema(ctx context.Context, table meta.TableID, f *schema.Field) (*schema.Schema, error) {
	resp, err := c.sms(ctx, table, wire.MethodUpdateSchema, &wire.UpdateSchemaRequest{Table: table, Field: f})
	if err != nil {
		return nil, err
	}
	sc := resp.(*wire.UpdateSchemaResponse).Schema
	c.mu.Lock()
	c.schemas[table] = sc
	c.mu.Unlock()
	return sc, nil
}

// Stream is a writable Vortex stream handle (§4.1). Not safe for
// concurrent use: a stream has a single append point.
type Stream struct {
	c      *Client
	info   meta.StreamInfo
	schema *schema.Schema

	sl    *meta.StreamletInfo
	epoch int64

	// length is the client's view of the stream's current row count,
	// advanced by successful appends (§4.2.2).
	length int64

	appendsSeen  int
	lastBatchSeq int64
	conn         rpc.ClientStream
	connServer   string
	pending      []*PendingAppend
	pendingMu    sync.Mutex

	// noRetryBefore floors the next attempt per destination server: a
	// RESOURCE_EXHAUSTED push-back's hint from server A must delay the
	// next attempt against A, and only A — rotated or hedged attempts
	// against other servers keep their own backoff state.
	noRetryBefore map[string]time.Time

	finalized bool
}

// CreateStream creates a stream on a table (§4.2.1).
func (c *Client) CreateStream(ctx context.Context, table meta.TableID, typ meta.StreamType) (*Stream, error) {
	resp, err := c.sms(ctx, table, wire.MethodCreateStream, &wire.CreateStreamRequest{Table: table, Type: typ})
	if err != nil {
		return nil, err
	}
	r := resp.(*wire.CreateStreamResponse)
	return &Stream{c: c, info: r.Stream, schema: r.Schema}, nil
}

// AttachStream opens a handle to an existing stream (e.g. a re-delivered
// Dataflow worker reattaching to its dedicated stream, §7.4). The handle
// resumes at the stream's current length.
func (c *Client) AttachStream(ctx context.Context, id meta.StreamID) (*Stream, error) {
	resp, err := c.sms(ctx, "", wire.MethodGetStream, &wire.GetStreamRequest{Stream: id})
	if err != nil {
		return nil, err
	}
	info := resp.(*wire.GetStreamResponse).Stream
	sc, err := c.GetSchema(ctx, info.Table)
	if err != nil {
		return nil, err
	}
	return &Stream{c: c, info: info, schema: sc, finalized: info.Finalized}, nil
}

// Info returns the stream's metadata.
func (s *Stream) Info() meta.StreamInfo { return s.info }

// Schema returns the schema the stream currently serializes under.
func (s *Stream) Schema() *schema.Schema { return s.schema }

// Length returns the client's view of the stream's row count.
func (s *Stream) Length() int64 { return s.length }

// ensureStreamlet acquires a writable streamlet from the SMS.
func (s *Stream) ensureStreamlet(ctx context.Context, exclude string) error {
	resp, err := s.c.smsRetry(ctx, s.info.Table, wire.MethodGetWritableStreamlet, &wire.GetWritableStreamletRequest{
		Stream:        s.info.ID,
		ExcludeServer: exclude,
	})
	if err != nil {
		return err
	}
	r := resp.(*wire.GetWritableStreamletResponse)
	sl := r.Streamlet
	s.sl = &sl
	s.epoch = r.Epoch
	if r.Schema.Version > s.schema.Version {
		s.schema = r.Schema
	}
	// The stream's length resumes from the new streamlet's start.
	if sl.StartOffset+sl.RowCount > s.length {
		s.length = sl.StartOffset + sl.RowCount
	}
	s.closeConn()
	return nil
}

func (s *Stream) closeConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.connServer = ""
	}
	s.failPending(fmt.Errorf("%w: connection closed", rpc.ErrClosed))
}

// AppendOptions is the legacy struct form of per-append options; it
// implements AppendOption so existing callsites keep compiling.
//
// The zero value appends at the current end of the stream. Offset > 0
// pins the landing offset (§4.2.2); use AtOffset(0) to pin offset zero.
//
// Deprecated: pass AtOffset / WithDeadline options instead.
type AppendOptions struct {
	// Offset, when > 0, is the stream offset the rows must land at.
	// Zero or negative means "append at the current end".
	Offset int64
}

func (o AppendOptions) applyAppend(c *appendConfig) {
	if o.Offset > 0 {
		c.offset = o.Offset
	} else {
		c.offset = -1
	}
}

// Append appends rows and returns the stream offset of the first row.
// It retries under the client's RetryPolicy — capped exponential
// backoff with jitter, per-attempt deadlines, streamlet rotation across
// Stream Server failures, optional hedging — and refreshes the schema
// when stale. Offset conflicts surface as CodeWrongOffset
// (errors.Is(err, ErrWrongOffset)).
func (s *Stream) Append(ctx context.Context, rows []schema.Row, opts ...AppendOption) (int64, error) {
	if s.finalized {
		return 0, newError(CodeStreamFinalized, "append", false, nil)
	}
	cfg := resolveAppendOpts(opts)
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	if err := s.validateRows(ctx, rows); err != nil {
		return 0, err
	}
	payload := rowenc.EncodeRows(rows)
	crc := blockenc.Checksum(payload)
	t0 := time.Now()

	pol := s.c.opts.Retry
	var lastErr error
	sameStreamletFails := 0
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !s.c.takeRetryToken() {
				// Budget dry: fail fast rather than join a retry storm.
				break
			}
			s.c.retries.Add(1)
			// The backoff never undercuts a push-back hint: the floor is
			// the later of this destination's no-retry-before mark and
			// the hint carried by the last error.
			d := s.c.backoffFor(attempt)
			if w := s.retryFloor(); w > d {
				d = w
			}
			if w := pushBackHint(lastErr); w > d {
				d = w
			}
			if err := sleepCtx(ctx, d); err != nil {
				return 0, newError(CodeUnavailable, "append", false, err)
			}
		}
		if s.sl == nil {
			exclude := ""
			if attempt > 0 && s.connServer != "" {
				exclude = s.connServer
			}
			if err := s.ensureStreamlet(ctx, exclude); err != nil {
				if retryableErr(err) && attempt < pol.MaxAttempts-1 {
					lastErr = err
					continue
				}
				return 0, err
			}
		}
		req := &wire.AppendRequest{
			Streamlet:            s.sl.ID,
			Payload:              payload,
			CRC:                  crc,
			ExpectedStreamOffset: cfg.offset,
			SchemaVersion:        s.schema.Version,
			// Flag retransmissions so the server may replay its last ack
			// (the write landed, the response was lost) instead of
			// reporting a fresh-duplicate offset conflict.
			Retry: attempt > 0,
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if pol.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pol.PerAttemptTimeout)
		}
		resp, err := s.sendHedged(attemptCtx, req, cfg.offset >= 0)
		cancel()
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return 0, newError(CodeUnavailable, "append", false, lastErr)
			}
			if errors.Is(err, rpc.ErrUnreachable) || sameStreamletFails >= 1 {
				// The server is gone (or keeps failing): reconcile the
				// streamlet and place a fresh one elsewhere (§5.4).
				s.rotate(ctx)
				sameStreamletFails = 0
			} else {
				// First failure on this streamlet: retry the same server.
				// If the write landed and only the ack was lost, its
				// retransmission memo replays the ack (exactly-once).
				sameStreamletFails++
				s.closeConn()
			}
			continue
		}
		sameStreamletFails = 0
		if resp.Error == "" {
			if end := resp.StreamOffset + resp.RowCount; end > s.length {
				s.length = end
			}
			s.appendsSeen++
			s.lastBatchSeq = int64(resp.Timestamp)
			s.c.appendLatency.Record(time.Since(t0))
			s.c.creditRetryToken()
			return resp.StreamOffset, nil
		}
		code := resp.Error
		if i := strings.IndexByte(code, ':'); i >= 0 {
			code = code[:i]
		}
		switch code {
		case wire.ErrCodeWrongOffset:
			return 0, newError(CodeWrongOffset, "append", false, errors.New(resp.Error))
		case wire.ErrCodeSchemaStale:
			// Fetch the latest schema and retry (§5.4.1).
			sc, err := s.c.GetSchema(ctx, s.info.Table)
			if err != nil {
				return 0, err
			}
			s.schema = sc
			for _, r := range rows {
				if err := sc.ValidateRow(r); err != nil {
					return 0, err
				}
			}
			lastErr = errors.New(resp.Error)
		case wire.ErrCodeBadPayload:
			return 0, newError(CodeInvalid, "append", false, errors.New(resp.Error))
		case wire.ErrCodeResourceExhausted:
			// Admission push-back (§5.5). The quota is per table, not per
			// server, so rotating elsewhere would only add control-plane
			// load to an overload — stay put and honor the hint against
			// this destination.
			hint := time.Duration(resp.RetryAfterNanos)
			s.recordPushBack(s.sl.Server, hint)
			s.c.shedPushBacks.Add(1)
			lastErr = &Error{Code: CodeResourceExhausted, Op: "append", Retryable: true, RetryAfter: hint, Err: errors.New(resp.Error)}
		default: // STREAMLET_CLOSED, UNKNOWN_STREAMLET, IO_ERROR
			lastErr = errors.New(resp.Error)
			s.rotate(ctx)
		}
	}
	// Shed appends stay retryable-typed even out of attempts (or budget):
	// nothing was written, and the caller may retry after the hint.
	var ce *Error
	if errors.As(lastErr, &ce) && ce.Code == CodeResourceExhausted {
		hint := ce.RetryAfter
		if w := s.retryFloor(); w > hint {
			hint = w
		}
		return 0, &Error{Code: CodeResourceExhausted, Op: "append", Retryable: true, RetryAfter: hint, Err: lastErr}
	}
	// A transport-loss cause (connection reset, partition, dropped
	// in-flight message) stays retryable-typed too: the offset pin and
	// the server's retransmission memo make the caller's next attempt
	// exactly-once, so running out of attempts must not demote the error
	// to terminal.
	if retryableErr(lastErr) {
		return 0, newError(CodeUnavailable, "append", true, lastErr)
	}
	return 0, newError(CodeExhausted, "append", false, lastErr)
}

// recordPushBack floors the next attempt against dest at now+hint.
func (s *Stream) recordPushBack(dest string, hint time.Duration) {
	if hint <= 0 {
		return
	}
	if s.noRetryBefore == nil {
		s.noRetryBefore = make(map[string]time.Time)
	}
	until := time.Now().Add(hint)
	if until.After(s.noRetryBefore[dest]) {
		s.noRetryBefore[dest] = until
	}
}

// retryFloor returns the remaining push-back wait for the destination
// the next attempt will hit: the current streamlet's server, or the
// control plane ("") when a new streamlet must be fetched first.
func (s *Stream) retryFloor() time.Duration {
	dest := ""
	if s.sl != nil {
		dest = s.sl.Server
	}
	until, ok := s.noRetryBefore[dest]
	if !ok {
		return 0
	}
	d := time.Until(until)
	if d <= 0 {
		delete(s.noRetryBefore, dest)
		return 0
	}
	return d
}

// sendHedged dispatches one append attempt, racing a delayed second
// copy against a slow primary when hedging is enabled. Hedging applies
// only to offset-pinned unary appends: offset validation plus the
// server's retransmission memo make the duplicate harmless, and a bi-di
// stream is already ordered.
func (s *Stream) sendHedged(ctx context.Context, req *wire.AppendRequest, pinned bool) (*wire.AppendResponse, error) {
	d := s.c.opts.Retry.HedgeDelay
	if d <= 0 || !pinned || s.useBidi() {
		return s.send(ctx, req)
	}
	type result struct {
		resp  *wire.AppendResponse
		err   error
		hedge bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	addr := s.sl.Server
	ch := make(chan result, 2)
	call := func(r *wire.AppendRequest, hedge bool) {
		resp, err := s.c.net.Unary(hctx, addr, wire.MethodAppend, r)
		if err != nil {
			ch <- result{nil, err, hedge}
			return
		}
		ch <- result{resp.(*wire.AppendResponse), nil, hedge}
	}
	go call(req, false)
	timer := time.NewTimer(d)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	var firstErr error
	for outstanding > 0 {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				h := *req
				h.Retry = true
				s.c.hedges.Add(1)
				outstanding++
				go call(&h, true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					s.c.hedgeWins.Add(1)
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	return nil, firstErr
}

// AppendTracked is Append plus the storage sequence (the TrueTime
// timestamp) assigned to the batch's first row; the verification
// pipelines (§6.3) record it to locate acked rows later.
func (s *Stream) AppendTracked(ctx context.Context, rows []schema.Row, opts ...AppendOption) (offset, firstSeq int64, err error) {
	off, err := s.Append(ctx, rows, opts...)
	if err != nil {
		return off, 0, err
	}
	return off, s.lastBatchSeq, nil
}

// validateRows checks rows against the stream's schema, refreshing the
// schema once if validation fails — the table may have evolved since the
// stream handle cached it (§5.4.1).
func (s *Stream) validateRows(ctx context.Context, rows []schema.Row) error {
	var firstErr error
	for _, r := range rows {
		if err := s.schema.ValidateRow(r); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		return nil
	}
	sc, err := s.c.GetSchema(ctx, s.info.Table)
	if err != nil || sc.Version <= s.schema.Version {
		return firstErr
	}
	s.schema = sc
	for _, r := range rows {
		if err := sc.ValidateRow(r); err != nil {
			return err
		}
	}
	return nil
}

// rotate abandons the current streamlet: the SMS reconciles its true
// length and the next ensureStreamlet places a fresh one elsewhere.
func (s *Stream) rotate(ctx context.Context) {
	if s.sl == nil {
		return
	}
	s.c.rotations.Add(1)
	failed := s.sl
	s.closeConn()
	s.sl = nil
	s.connServer = failed.Server
	// Reconciliation must land before the next streamlet is placed: the
	// successor's start offset is derived from this streamlet's durable
	// row count (§7.1). Retry it across control-plane loss; if it still
	// fails, the next GetWritableStreamlet surfaces the inconsistency.
	_, _ = s.c.smsRetry(ctx, s.info.Table, wire.MethodReconcile, &wire.ReconcileRequest{
		Table:     failed.Table,
		Stream:    failed.Stream,
		Streamlet: failed.ID,
	})
}

// send dispatches one append over the adaptively chosen connection type.
func (s *Stream) send(ctx context.Context, req *wire.AppendRequest) (*wire.AppendResponse, error) {
	if s.useBidi() {
		return s.sendBidi(ctx, req)
	}
	resp, err := s.c.net.Unary(ctx, s.sl.Server, wire.MethodAppend, req)
	if err != nil {
		return nil, err
	}
	return resp.(*wire.AppendResponse), nil
}

func (s *Stream) useBidi() bool {
	if s.c.opts.ForceUnary {
		return false
	}
	if s.c.opts.ForceBidi {
		return true
	}
	return s.appendsSeen >= s.c.opts.UnaryAppendThreshold
}

func (s *Stream) sendBidi(ctx context.Context, req *wire.AppendRequest) (*wire.AppendResponse, error) {
	if err := s.ensureConn(ctx); err != nil {
		return nil, err
	}
	if err := s.conn.Send(req); err != nil {
		return nil, err
	}
	m, err := s.conn.Recv()
	if err != nil {
		return nil, err
	}
	return m.(*wire.AppendResponse), nil
}

func (s *Stream) ensureConn(ctx context.Context) error {
	if s.conn != nil && s.connServer == s.sl.Server {
		return nil
	}
	s.closeConn()
	conn, err := s.c.net.OpenStream(ctx, s.sl.Server, wire.MethodAppend, s.c.opts.FlowControlWindow)
	if err != nil {
		return err
	}
	s.conn = conn
	s.connServer = s.sl.Server
	return nil
}

// PendingAppend is an in-flight pipelined append (§4.2.2).
type PendingAppend struct {
	offset   int64
	rowCount int64
	done     chan struct{}
	resp     *wire.AppendResponse
	err      error
}

// Wait blocks for the append's result, returning the stream offset the
// rows landed at.
func (p *PendingAppend) Wait() (int64, error) {
	<-p.done
	if p.err != nil {
		return 0, p.err
	}
	if p.resp.Error != "" {
		return 0, errors.New(p.resp.Error)
	}
	return p.resp.StreamOffset, nil
}

// AppendAsync pipelines an append over the bi-di connection without
// waiting for prior appends to complete. Results must be awaited in
// order. Pipelined appends do not retry: a failure surfaces on Wait and
// the caller resubmits through Append.
func (s *Stream) AppendAsync(ctx context.Context, rows []schema.Row, opts ...AppendOption) (*PendingAppend, error) {
	if s.finalized {
		return nil, newError(CodeStreamFinalized, "append", false, nil)
	}
	cfg := resolveAppendOpts(opts)
	if err := s.validateRows(ctx, rows); err != nil {
		return nil, err
	}
	if s.sl == nil {
		if err := s.ensureStreamlet(ctx, ""); err != nil {
			return nil, err
		}
	}
	if err := s.ensureConn(ctx); err != nil {
		return nil, err
	}
	payload := rowenc.EncodeRows(rows)
	req := &wire.AppendRequest{
		Streamlet:            s.sl.ID,
		Payload:              payload,
		CRC:                  blockenc.Checksum(payload),
		ExpectedStreamOffset: cfg.offset,
		SchemaVersion:        s.schema.Version,
	}
	p := &PendingAppend{offset: cfg.offset, rowCount: int64(len(rows)), done: make(chan struct{})}
	s.pendingMu.Lock()
	first := len(s.pending) == 0
	s.pending = append(s.pending, p)
	s.pendingMu.Unlock()
	if err := s.conn.Send(req); err != nil {
		s.dropPending(p, err)
		return nil, err
	}
	if first {
		go s.collectResponses(s.conn)
	}
	s.appendsSeen++
	return p, nil
}

// collectResponses drains bi-di responses in order onto the pending queue.
func (s *Stream) collectResponses(conn rpc.ClientStream) {
	for {
		m, err := conn.Recv()
		s.pendingMu.Lock()
		if len(s.pending) == 0 {
			s.pendingMu.Unlock()
			return
		}
		p := s.pending[0]
		s.pending = s.pending[1:]
		empty := len(s.pending) == 0
		s.pendingMu.Unlock()
		if err != nil {
			p.err = err
			close(p.done)
			s.failPending(err)
			return
		}
		p.resp = m.(*wire.AppendResponse)
		if p.resp.Error == "" {
			if end := p.resp.StreamOffset + p.resp.RowCount; end > s.length {
				s.length = end
			}
		}
		close(p.done)
		if empty {
			return
		}
	}
}

func (s *Stream) dropPending(p *PendingAppend, err error) {
	s.pendingMu.Lock()
	for i, q := range s.pending {
		if q == p {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.pendingMu.Unlock()
	p.err = err
	close(p.done)
}

func (s *Stream) failPending(err error) {
	s.pendingMu.Lock()
	pending := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	for _, p := range pending {
		p.err = err
		close(p.done)
	}
}

// Flush makes all rows up to (excluding) offset visible on a BUFFERED
// stream (§4.2.3). Idempotent; flushing behind the frontier is a no-op.
func (s *Stream) Flush(ctx context.Context, offset int64) error {
	// Durable flush record in the WOS log (§5.4.4), best effort when the
	// streamlet is unreachable — the SMS frontier is authoritative.
	if s.sl != nil {
		_, _ = s.c.net.Unary(ctx, s.sl.Server, wire.MethodFlush, &wire.FlushRequest{
			Streamlet:    s.sl.ID,
			StreamOffset: offset,
		})
	}
	_, err := s.c.smsRetry(ctx, s.info.Table, wire.MethodFlushStream, &wire.FlushStreamRequest{
		Stream: s.info.ID,
		Offset: offset,
	})
	return err
}

// Finalize prevents further appends (§4.2.5) and returns the stream's
// final row count.
// Finalization is idempotent at the SMS, so retrying it is safe.
func (s *Stream) Finalize(ctx context.Context) (int64, error) {
	s.closeConn()
	resp, err := s.c.smsRetry(ctx, s.info.Table, wire.MethodFinalizeStream, &wire.FinalizeStreamRequest{Stream: s.info.ID})
	if err != nil {
		return 0, err
	}
	s.finalized = true
	s.sl = nil
	return resp.(*wire.FinalizeStreamResponse).RowCount, nil
}

// BatchCommit atomically commits PENDING streams (§4.2.4). All streams
// must belong to the same table.
func (c *Client) BatchCommit(ctx context.Context, table meta.TableID, streams []meta.StreamID) (truetime.Timestamp, error) {
	resp, err := c.sms(ctx, table, wire.MethodBatchCommit, &wire.BatchCommitRequest{Streams: streams})
	if err != nil {
		return 0, err
	}
	return resp.(*wire.BatchCommitResponse).CommitTS, nil
}

// WriteCommitRecord asks the stream's server to flush its pending commit
// record (normally written with the next append or after idling, §7.1).
func (s *Stream) WriteCommitRecord(ctx context.Context) error {
	if s.sl == nil {
		return nil
	}
	_, err := s.c.net.Unary(ctx, s.sl.Server, wire.MethodWriteCommitRecord, &wire.WriteCommitRecordRequest{Streamlet: s.sl.ID})
	return err
}
