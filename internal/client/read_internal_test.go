package client

import (
	"errors"
	"strings"
	"testing"
)

// ReplicatedReadError must separate "the region has no such cluster"
// (configuration — not retryable) from "the replica failed the
// operation" (outage window — retryable), and expose each per-replica
// cause to errors.Is.
func TestReplicatedReadErrorClassification(t *testing.T) {
	cause := errors.New("disk on fire")
	outage := &ReplicatedReadError{
		Op:   "read",
		Path: "tables/t/sl-1/f-0",
		Attempts: []ReplicaAttempt{
			{Cluster: "alpha", Err: cause},
			{Cluster: "beta", Err: errors.New("sealed reader gone")},
		},
	}
	if !outage.retryable() {
		t.Fatal("per-replica failures must be retryable")
	}
	if !errors.Is(outage, cause) {
		t.Fatal("per-replica cause not reachable through errors.Is")
	}
	msg := outage.Error()
	for _, want := range []string{"read", "tables/t/sl-1/f-0", "alpha", "beta", "disk on fire"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}

	misconfig := &ReplicatedReadError{
		Op:      "list",
		Path:    "tables/t/",
		Unknown: []string{"gamma"},
	}
	if misconfig.retryable() {
		t.Fatal("unknown clusters are a configuration error; retrying cannot help")
	}
	if !strings.Contains(misconfig.Error(), "gamma") {
		t.Fatalf("error %q does not name the unknown cluster", misconfig.Error())
	}

	// The retry policy consults the same classification.
	if !retryableErr(outage) {
		t.Fatal("retry policy must retry a replica outage")
	}
	if retryableErr(misconfig) {
		t.Fatal("retry policy must not retry a misconfiguration")
	}
}
