package client

import (
	"testing"
	"time"

	"vortex/internal/meta"
)

// TestPushBackFloorPerDestination pins the fix for the shared-backoff
// bug: push-back floors are kept per destination server, so a hint from
// server A delays the next attempt against A — and only A. Rotated (or
// hedged) attempts against other servers, and control-plane fetches,
// keep their own state.
func TestPushBackFloorPerDestination(t *testing.T) {
	s := &Stream{sl: &meta.StreamletInfo{Server: "ss-a"}}
	s.recordPushBack("ss-a", 80*time.Millisecond)

	if got := s.retryFloor(); got <= 0 {
		t.Fatalf("floor against pushed-back server = %v, want > 0", got)
	}
	// The stream rotates onto another server: A's floor must not follow.
	s.sl.Server = "ss-b"
	if got := s.retryFloor(); got != 0 {
		t.Fatalf("server A's floor leaked to server B: %v", got)
	}
	// No streamlet → the next attempt hits the control plane (""), which
	// has its own (empty) state.
	s.sl = nil
	if got := s.retryFloor(); got != 0 {
		t.Fatalf("server A's floor leaked to the control plane: %v", got)
	}
	s.recordPushBack("", 50*time.Millisecond)
	if got := s.retryFloor(); got <= 0 {
		t.Fatalf("control-plane floor not honored: %v", got)
	}
}

// TestPushBackFloorExtendOnly: a later, shorter hint must not shrink an
// earlier floor (the strictest outstanding push-back wins), and
// non-positive hints are ignored entirely.
func TestPushBackFloorExtendOnly(t *testing.T) {
	s := &Stream{sl: &meta.StreamletInfo{Server: "ss-a"}}
	s.recordPushBack("ss-a", 80*time.Millisecond)
	before := s.retryFloor()
	s.recordPushBack("ss-a", time.Millisecond)
	if after := s.retryFloor(); after < before-5*time.Millisecond {
		t.Fatalf("shorter hint shrank the floor: %v -> %v", before, after)
	}
	s.recordPushBack("ss-z", 0)
	s.recordPushBack("ss-z", -time.Second)
	if _, ok := s.noRetryBefore["ss-z"]; ok {
		t.Fatal("non-positive hint recorded a floor")
	}
}

// TestPushBackFloorExpires: once the hinted wait has passed, the floor
// is gone and its entry is lazily deleted — the map does not grow with
// long-dead push-backs.
func TestPushBackFloorExpires(t *testing.T) {
	s := &Stream{sl: &meta.StreamletInfo{Server: "ss-a"}}
	s.recordPushBack("ss-a", time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if got := s.retryFloor(); got != 0 {
		t.Fatalf("expired floor still in force: %v", got)
	}
	if _, ok := s.noRetryBefore["ss-a"]; ok {
		t.Fatal("expired floor not deleted")
	}
}
