package client

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vortex/internal/dml"
	"vortex/internal/fragment"
	"vortex/internal/meta"
	"vortex/internal/ros"
	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/streamserver"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

// Assignment is one independently scannable unit of a table snapshot —
// what the Query Coordinator dispatches to Dremel shards (§7).
type Assignment struct {
	// Frag describes the fragment; for undiscovered tail files only
	// Path, Clusters, Streamlet and Format are meaningful.
	Frag meta.FragmentInfo
	// Mask is the fragment-local deletion mask (§7.3).
	Mask *dml.Mask
	// Vis is the owning stream's visibility state at the snapshot.
	Vis wire.StreamVisibility
	// StreamStart is the stream row offset of the fragment's first row.
	StreamStart int64
	// TailMask is the streamlet-tail deletion mask in stream-offset
	// coordinates (live streamlets only).
	TailMask *dml.Mask
	// Live marks fragments of writable streamlets: the reader must scan
	// the file itself and apply the commit rule (§7.1).
	Live bool
	// StreamletStart is the streamlet's start offset in the stream.
	StreamletStart int64
	// StreamletID/Stream identify the streamlet for reconciliation.
	Stream meta.StreamID
	// NextPath is the path of the streamlet's next log file, if one
	// exists: its File Map header bounds this file's committed size
	// (§7.1 disaster resilience). Empty when this is the last file.
	NextPath string
	// FragIndex is the fragment index parsed from the path (live files).
	FragIndex int
}

// ScanPlan is the set of assignments covering a table snapshot.
type ScanPlan struct {
	Table       meta.TableID
	SnapshotTS  truetime.Timestamp
	Schema      *schema.Schema
	Assignments []Assignment
	// Projection, when non-nil, names the top-level columns a scan needs;
	// ROS scans then decode only those columns (WOS rows are row-major
	// and always decode fully — the asymmetry the LSM of formats exists
	// for, §6.1). Nil means all columns.
	Projection map[string]bool
}

// Plan obtains the read view from the SMS and expands it — including
// discovering tail files the SMS has not heard about — into assignments.
func (c *Client) Plan(ctx context.Context, table meta.TableID, snapshotTS truetime.Timestamp) (*ScanPlan, error) {
	resp, err := c.sms(ctx, table, wire.MethodReadView, &wire.ReadViewRequest{Table: table, SnapshotTS: snapshotTS})
	if err != nil {
		return nil, err
	}
	view := resp.(*wire.ReadViewResponse)
	plan := &ScanPlan{Table: table, SnapshotTS: view.SnapshotTS, Schema: view.Schema}
	for _, rf := range view.Fragments {
		plan.Assignments = append(plan.Assignments, Assignment{
			Frag:        rf.Info,
			Mask:        rf.Mask,
			Vis:         rf.Vis,
			StreamStart: rf.StreamStart,
		})
	}
	for _, rsl := range view.Streamlets {
		as, err := c.planStreamletTail(ctx, table, view.SnapshotTS, rsl)
		if err != nil {
			return nil, err
		}
		plan.Assignments = append(plan.Assignments, as...)
	}
	return plan, nil
}

// planStreamletTail lists a live streamlet's log files and produces one
// assignment per non-deleted file.
func (c *Client) planStreamletTail(ctx context.Context, table meta.TableID, ts truetime.Timestamp, rsl wire.ReadStreamlet) ([]Assignment, error) {
	prefix := streamserver.StreamletPrefix(table, rsl.Info.ID)
	paths, err := c.listReplicated(rsl.Info.Clusters, prefix)
	if err != nil {
		return nil, err
	}
	deletedPaths := make(map[string]bool, len(rsl.DeletedFragments))
	masksByPath := make(map[string]*dml.Mask)
	for _, fid := range rsl.DeletedFragments {
		idx := meta.FragmentIndexFromID(fid)
		deletedPaths[streamserver.FragmentPath(table, rsl.Info.ID, idx)] = true
	}
	for fid, m := range rsl.FragmentMasks {
		idx := meta.FragmentIndexFromID(fid)
		masksByPath[streamserver.FragmentPath(table, rsl.Info.ID, idx)] = m
	}
	sort.Slice(paths, func(i, j int) bool {
		return fragIndexFromPath(paths[i]) < fragIndexFromPath(paths[j])
	})
	var out []Assignment
	for i, p := range paths {
		if deletedPaths[p] {
			continue
		}
		next := ""
		if i+1 < len(paths) {
			next = paths[i+1]
		}
		out = append(out, Assignment{
			Frag: meta.FragmentInfo{
				Streamlet: rsl.Info.ID,
				Table:     table,
				Format:    meta.WOS,
				Path:      p,
				Clusters:  rsl.Info.Clusters,
			},
			Mask:           masksByPath[p],
			Vis:            rsl.Vis,
			TailMask:       rsl.TailMask,
			Live:           true,
			StreamletStart: rsl.Info.StartOffset,
			Stream:         rsl.Info.Stream,
			NextPath:       next,
			FragIndex:      fragIndexFromPath(p),
		})
	}
	return out, nil
}

// fragIndexFromPath parses the "f-N" segment of a fragment path: the
// leading digit run after the last "/f-". Groomed or renamed files may
// carry a suffix ("f-3.groomed", "f-3/part") and must still sort into
// tail order, so only a segment with no digits at all yields -1.
func fragIndexFromPath(p string) int {
	i := strings.LastIndex(p, "/f-")
	if i < 0 {
		return -1
	}
	rest := p[i+3:]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil {
		return -1
	}
	return n
}

// ReplicaAttempt is one replica's failure during a replicated Colossus
// operation.
type ReplicaAttempt struct {
	Cluster string
	Err     error
}

// ReplicatedReadError reports that no replica served a Colossus
// operation. It distinguishes clusters the region does not know
// (misconfiguration — retrying cannot help) from replicas that failed
// the operation (an outage window — retryable), and wraps every
// per-replica error so tests can assert which replica failed and why.
type ReplicatedReadError struct {
	Op       string // "read" or "list"
	Path     string
	Unknown  []string         // cluster names absent from the region
	Attempts []ReplicaAttempt // failed attempts, in replica-preference order
}

func (e *ReplicatedReadError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "client: %s %s: no replica served", e.Op, e.Path)
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, "; %s: %v", a.Cluster, a.Err)
	}
	if len(e.Unknown) > 0 {
		fmt.Fprintf(&b, "; unknown clusters %v", e.Unknown)
	}
	return b.String()
}

// Unwrap exposes the per-replica errors to errors.Is/errors.As.
func (e *ReplicatedReadError) Unwrap() []error {
	out := make([]error, 0, len(e.Attempts))
	for _, a := range e.Attempts {
		out = append(out, a.Err)
	}
	return out
}

// retryable: a replica that exists but failed may heal; an error made
// only of unknown clusters is a configuration problem no retry fixes.
func (e *ReplicatedReadError) retryable() bool { return len(e.Attempts) > 0 }

// listReplicated lists a prefix from the first reachable replica.
func (c *Client) listReplicated(clusters [2]string, prefix string) ([]string, error) {
	rerr := &ReplicatedReadError{Op: "list", Path: prefix}
	for _, name := range c.replicaOrder(clusters) {
		if name == "" {
			continue
		}
		cl := c.region.Blob(name)
		if cl == nil {
			rerr.Unknown = append(rerr.Unknown, name)
			continue
		}
		paths, err := cl.List(prefix)
		if err == nil {
			return paths, nil
		}
		rerr.Attempts = append(rerr.Attempts, ReplicaAttempt{Cluster: name, Err: err})
	}
	return nil, rerr
}

// replicaOrder prefers the configured local cluster (§5.4.6).
func (c *Client) replicaOrder(clusters [2]string) []string {
	if clusters[0] == "" && clusters[1] == "" {
		return nil
	}
	if c.opts.LocalCluster != "" && clusters[1] == c.opts.LocalCluster {
		return []string{clusters[1], clusters[0]}
	}
	return []string{clusters[0], clusters[1]}
}

// readReplicated reads a whole file from the first replica that serves
// it, returning the serving cluster's name alongside the data.
func (c *Client) readReplicated(clusters [2]string, path string) ([]byte, string, error) {
	rerr := &ReplicatedReadError{Op: "read", Path: path}
	for _, name := range c.replicaOrder(clusters) {
		if name == "" {
			continue
		}
		cl := c.region.Blob(name)
		if cl == nil {
			rerr.Unknown = append(rerr.Unknown, name)
			continue
		}
		data, err := cl.Read(path, 0, -1)
		if err == nil {
			return data, name, nil
		}
		rerr.Attempts = append(rerr.Attempts, ReplicaAttempt{Cluster: name, Err: err})
	}
	return nil, "", rerr
}

// PosRow is a visible row with its physical position — the provenance
// DML statements need to build deletion masks (§7.3).
type PosRow struct {
	Stamped rowenc.Stamped
	// FragID identifies the fragment for SMS-known fragments ("" for
	// undiscovered live tail files).
	FragID meta.FragmentID
	// FragLocal is the row's physical index within its fragment.
	FragLocal int64
	// StreamOffset is the row's offset within its stream (-1 for ROS).
	StreamOffset int64
	// Live marks rows read from a writable streamlet's files: deletions
	// target the streamlet tail (stream-offset coordinates).
	Live      bool
	Streamlet meta.StreamletID
	Stream    meta.StreamID
}

// Scan reads one assignment and returns its visible rows, stamped with
// their storage sequence numbers.
func (c *Client) Scan(ctx context.Context, plan *ScanPlan, a Assignment) ([]rowenc.Stamped, error) {
	detailed, err := c.ScanDetailed(ctx, plan, a)
	if err != nil {
		return nil, err
	}
	out := make([]rowenc.Stamped, len(detailed))
	for i, d := range detailed {
		out[i] = d.Stamped
	}
	return out, nil
}

// ScanDetailed reads one assignment with per-row provenance.
func (c *Client) ScanDetailed(ctx context.Context, plan *ScanPlan, a Assignment) ([]PosRow, error) {
	start := time.Now()
	var (
		rows []PosRow
		err  error
	)
	if a.Frag.Format == meta.ROS {
		rows, err = c.scanROS(plan, a)
	} else {
		rows, err = c.scanWOS(ctx, plan, a)
	}
	if err == nil {
		c.scanLatency.Record(time.Since(start))
	}
	return rows, err
}

// fragmentBytes returns the raw file bytes of an immutable (ROS or
// sealed-WOS) fragment: disk tier first, then Colossus with a disk-tier
// back-fill. Concurrent callers for the same path — demand scans and
// the prefetcher alike — coalesce into one fetch.
func (c *Client) fragmentBytes(clusters [2]string, path string) ([]byte, error) {
	v, err := c.flight.Do("bytes:"+path, func() (any, error) {
		if data, ok := c.cache.diskGet(path); ok {
			return data, nil
		}
		data, _, err := c.readReplicated(clusters, path)
		if err != nil {
			return nil, err
		}
		c.cache.diskPut(path, data)
		return data, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// rosReader returns the (cached) decoded reader for a ROS fragment,
// fetching and opening the file on a miss. The miss fill is
// singleflighted per path: N concurrent cold scans of one fragment pay
// one fetch and one decode, not N.
func (c *Client) rosReader(a Assignment) (*ros.Reader, error) {
	if rd := c.cache.getROS(a.Frag.Path); rd != nil {
		return rd, nil
	}
	v, err := c.flight.Do("ros:"+a.Frag.Path, func() (any, error) {
		if rd := c.cache.peekROS(a.Frag.Path); rd != nil {
			return rd, nil // a previous flight filled it after our miss
		}
		data, err := c.fragmentBytes(a.Frag.Clusters, a.Frag.Path)
		if err != nil {
			return nil, err
		}
		rd, err := ros.Open(data)
		if err != nil {
			return nil, err
		}
		c.cache.putROS(a.Frag.Path, rd, int64(len(data)))
		return rd, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ros.Reader), nil
}

// scanROS scans a ROS fragment. ROS files are immutable once written, so
// the decoded reader is cached by path and the assembled rows of each
// projection are memoized on the entry. A scan with an empty deletion
// mask returns the memoized slice unmodified — no per-scan
// re-materialization; masked scans filter-copy it.
func (c *Client) scanROS(plan *ScanPlan, a Assignment) ([]PosRow, error) {
	projKey := fmt.Sprintf("%d|%s", len(plan.Schema.Fields), projectionKey(plan.Projection))
	rows, ok := c.cache.getROSRows(a.Frag.Path, projKey, a.Frag.ID)
	if !ok {
		rd, err := c.rosReader(a)
		if err != nil {
			return nil, err
		}
		stamped, err := rd.RowsProjected(plan.Schema, plan.Projection)
		if err != nil {
			return nil, err
		}
		rows = make([]PosRow, len(stamped))
		for i, r := range stamped {
			rows[i] = PosRow{Stamped: r, FragID: a.Frag.ID, FragLocal: int64(i), StreamOffset: -1}
		}
		c.cache.putROSRows(a.Frag.Path, projKey, a.Frag.ID, rows)
	}
	if a.Mask.Empty() {
		return rows, nil
	}
	out := make([]PosRow, 0, len(rows))
	for i := range rows {
		if a.Mask.Deleted(rows[i].FragLocal) {
			continue
		}
		out = append(out, rows[i])
	}
	return out, nil
}

// scanWOS reads a WOS fragment file and extracts the visible rows. For
// live files it applies the §7.1 commit rule, consulting the second
// replica or SMS reconciliation for the final append. Sealed fragments
// (finalized streamlets) are immutable up to their committed boundary,
// so their decoded blocks are cached keyed by (path, CommittedBytes);
// live tail files always bypass the cache.
func (c *Client) scanWOS(ctx context.Context, plan *ScanPlan, a Assignment) ([]PosRow, error) {
	if !a.Live {
		return c.scanSealedWOS(plan, a)
	}
	order := c.replicaOrder(a.Frag.Clusters)
	data, usedCluster, err := c.readReplicated(a.Frag.Clusters, a.Frag.Path)
	if err != nil {
		return nil, err
	}
	scan, err := fragment.Scan(data)
	if err != nil {
		return nil, err
	}
	blocks := scan.CommittedBlocks

	if bound, ok := c.fileMapBound(a); ok {
		// A successor file exists: its File Map records this file's
		// committed final size — the authoritative bound (§7.1).
		blocks = nil
		for _, b := range scan.Blocks {
			if b.Offset+b.Size <= bound {
				blocks = append(blocks, b)
			}
		}
	} else if scan.TailBlock != nil {
		include, err := c.decideTail(ctx, plan, a, scan, usedCluster, order)
		if err != nil {
			return nil, err
		}
		if include {
			blocks = append(append([]fragment.Block(nil), blocks...), *scan.TailBlock)
		}
	}

	// Live files carry their own streamlet-local offsets; the header is
	// authoritative.
	fragStartRow := a.Frag.StartRow
	if len(blocks) > 0 {
		if first := firstDataBlock(blocks); first != nil {
			fragStartRow = first.StartRow
		}
	}
	fragID := meta.FragmentIDFor(a.Frag.Streamlet, a.FragIndex)
	decoded, err := c.decodeBlocks(blocks)
	if err != nil {
		return nil, err
	}
	return c.assembleWOS(plan, a, fragStartRow, fragID, decoded), nil
}

// scanSealedWOS scans a finalized-streamlet fragment. Sealed files are
// immutable up to their committed boundary, so the decoded blocks are
// cached keyed by (path, CommittedBytes), the raw bytes flow through
// the tiered fragmentBytes path, and the miss fill is singleflighted —
// only snapshot filtering (assembleWOS) runs per scan.
func (c *Client) scanSealedWOS(plan *ScanPlan, a Assignment) ([]PosRow, error) {
	if wosFastEligible(a) {
		// Fast path: when the snapshot covers every row and the
		// assignment restricts nothing, the memoized assembly is exact.
		if rows, ok := c.cache.getWOSRows(a.Frag.Path, a.Frag.CommittedBytes,
			a.Frag.ID, a.streamletStart(), plan.SnapshotTS); ok {
			return rows, nil
		}
	}
	blocks, ok := c.cache.getWOS(a.Frag.Path, a.Frag.CommittedBytes)
	if !ok {
		key := fmt.Sprintf("wos:%s:%d", a.Frag.Path, a.Frag.CommittedBytes)
		v, err := c.flight.Do(key, func() (any, error) {
			if cached, ok := c.cache.peekWOS(a.Frag.Path, a.Frag.CommittedBytes); ok {
				return cached, nil // a previous flight filled it after our miss
			}
			data, err := c.fragmentBytes(a.Frag.Clusters, a.Frag.Path)
			if err != nil {
				return nil, err
			}
			decoded, err := c.decodeSealedWOS(a, data)
			if err != nil {
				return nil, err
			}
			c.cache.putWOS(a.Frag.Path, a.Frag.CommittedBytes, decoded, int64(len(data)))
			return decoded, nil
		})
		if err != nil {
			return nil, err
		}
		blocks = v.([]wosBlock)
	}
	rows := c.assembleWOS(plan, a, a.Frag.StartRow, a.Frag.ID, blocks)
	c.maybeMemoWOS(plan, a, rows, blocks)
	return rows, nil
}

// decodeSealedWOS parses a sealed fragment file and decodes its
// committed data blocks. CommittedBytes, when recorded, bounds the
// result: "clients will not read past the logical finalized size"
// (§7.1).
func (c *Client) decodeSealedWOS(a Assignment, data []byte) ([]wosBlock, error) {
	scan, err := fragment.Scan(data)
	if err != nil {
		return nil, err
	}
	blocks := scan.CommittedBlocks
	if a.Frag.CommittedBytes > 0 {
		var bounded []fragment.Block
		for _, b := range scan.Blocks {
			if b.Offset+b.Size <= a.Frag.CommittedBytes {
				bounded = append(bounded, b)
			}
		}
		blocks = bounded
	}
	return c.decodeBlocks(blocks)
}

// decodeBlocks unseals and row-decodes WOS data blocks.
func (c *Client) decodeBlocks(blocks []fragment.Block) ([]wosBlock, error) {
	decoded := make([]wosBlock, 0, len(blocks))
	for _, b := range blocks {
		if b.Kind != fragment.BlockData {
			continue
		}
		plain, err := c.openSealed(b.Payload)
		if err != nil {
			return nil, err
		}
		rows, err := rowenc.DecodeRows(plain)
		if err != nil {
			return nil, err
		}
		decoded = append(decoded, wosBlock{Timestamp: b.Timestamp, StartRow: b.StartRow, Rows: rows})
	}
	return decoded, nil
}

// wosFastEligible reports whether an assignment applies no row filter
// beyond the snapshot bound: only then can the memoized full-visibility
// assembly be reused verbatim. Buffered streams are excluded because
// their flush frontier moves between snapshots.
func wosFastEligible(a Assignment) bool {
	if a.Live || !a.Mask.Empty() || a.TailMask != nil {
		return false
	}
	switch a.Vis.Type {
	case meta.Buffered:
		return false
	case meta.Pending:
		return a.Vis.Committed
	}
	return true
}

// maybeMemoWOS memoizes a sealed fragment's assembled rows when the
// scan that produced them was unrestricted AND its snapshot covered
// every decoded row — i.e. the slice is the fragment's complete view.
func (c *Client) maybeMemoWOS(plan *ScanPlan, a Assignment, rows []PosRow, blocks []wosBlock) {
	if !wosFastEligible(a) || len(rows) == 0 {
		return
	}
	total := 0
	for _, b := range blocks {
		total += len(b.Rows)
	}
	if len(rows) != total {
		return // the snapshot truncated the view
	}
	maxSeq := rows[0].Stamped.Seq
	for i := range rows {
		if rows[i].Stamped.Seq > maxSeq {
			maxSeq = rows[i].Stamped.Seq
		}
	}
	c.cache.putWOSRows(a.Frag.Path, a.Frag.CommittedBytes, &wosRowMemo{
		fragID:         a.Frag.ID,
		streamletStart: a.streamletStart(),
		// Seqs are timestamp-assigned (assembleWOS: seq = block TrueTime
		// timestamp + row index), so the max seq IS the newest row's
		// commit timestamp — the value the snapshot guard compares.
		maxRowTS: truetime.Timestamp(maxSeq),
		rows:     rows,
	})
}

// assembleWOS applies the §7.1 snapshot bound, visibility rules and
// deletion masks to decoded blocks. Shared by the direct read and the
// cache hit path: cached blocks carry no snapshot filtering, so every
// scan re-applies it here. The bound is two-level — a block past the
// snapshot ends the whole fragment, a row past it ends only its block.
func (c *Client) assembleWOS(plan *ScanPlan, a Assignment, fragStartRow int64, fragID meta.FragmentID, blocks []wosBlock) []PosRow {
	var out []PosRow
	for _, b := range blocks {
		if b.Timestamp > plan.SnapshotTS {
			break
		}
		for i, r := range b.Rows {
			seq := int64(b.Timestamp) + int64(i)
			if truetime.Timestamp(seq) > plan.SnapshotTS {
				break
			}
			streamletLocal := b.StartRow + int64(i)
			streamOffset := a.streamletStart() + streamletLocal
			fragLocal := streamletLocal - fragStartRow
			if !c.rowVisible(a, streamOffset, fragLocal) {
				continue
			}
			out = append(out, PosRow{
				Stamped:      rowenc.Stamped{Row: r, Seq: seq},
				FragID:       fragID,
				FragLocal:    fragLocal,
				StreamOffset: streamOffset,
				Live:         a.Live,
				Streamlet:    a.Frag.Streamlet,
				Stream:       a.Stream,
			})
		}
	}
	return out
}

func (a Assignment) streamletStart() int64 {
	if a.Live {
		return a.StreamletStart
	}
	return a.StreamStart - a.Frag.StartRow
}

func firstDataBlock(blocks []fragment.Block) *fragment.Block {
	for i := range blocks {
		if blocks[i].Kind == fragment.BlockData {
			return &blocks[i]
		}
	}
	return nil
}

// rowVisible applies stream-type visibility and deletion masks.
func (c *Client) rowVisible(a Assignment, streamOffset, fragLocal int64) bool {
	switch a.Vis.Type {
	case meta.Buffered:
		if streamOffset >= a.Vis.FlushedOffset {
			return false
		}
	case meta.Pending:
		if !a.Vis.Committed {
			return false
		}
	}
	if a.Mask != nil && fragLocal >= 0 && a.Mask.Deleted(fragLocal) {
		return false
	}
	if a.TailMask != nil && a.TailMask.Deleted(streamOffset) {
		return false
	}
	return true
}

// fileMapBound reads the successor file's header and returns this
// file's committed size from its File Map, if recorded.
func (c *Client) fileMapBound(a Assignment) (int64, bool) {
	if a.NextPath == "" {
		return 0, false
	}
	data, _, err := c.readReplicated(a.Frag.Clusters, a.NextPath)
	if err != nil {
		return 0, false
	}
	hdr, _, err := fragment.ParseHeader(data)
	if err != nil {
		return 0, false
	}
	for _, e := range hdr.FileMap {
		if e.Index == a.FragIndex {
			return e.CommittedSize, true
		}
	}
	return 0, false
}

// decideTail resolves the commit status of a live file's final append.
// Local decision first: if the other replica holds the identical tail,
// the dual write succeeded and the append is committed. Otherwise ask
// the SMS to reconcile (§7.1 "Reconciliation of the final append").
func (c *Client) decideTail(ctx context.Context, plan *ScanPlan, a Assignment, scan *fragment.ScanResult, usedCluster string, order []string) (bool, error) {
	var other string
	for _, name := range order {
		if name != usedCluster {
			other = name
		}
	}
	if cl := c.region.Blob(other); cl != nil {
		data, err := cl.Read(a.Frag.Path, 0, -1)
		if err == nil {
			oscan, serr := fragment.Scan(data)
			if serr == nil && replicaHasBlock(oscan, scan.TailBlock) {
				// The dual write reached both replicas: committed.
				return true, nil
			}
		}
	}
	// Replicas disagree or one is unreachable: only the SMS can make a
	// consistent decision for all readers.
	resp, err := c.sms(ctx, a.Frag.Table, wire.MethodReconcile, &wire.ReconcileRequest{
		Table:     a.Frag.Table,
		Stream:    a.Stream,
		Streamlet: a.Frag.Streamlet,
	})
	if err != nil {
		return false, fmt.Errorf("client: reconcile: %w", err)
	}
	rec := resp.(*wire.ReconcileResponse)
	for _, f := range rec.Fragments {
		if f.Path == a.Frag.Path {
			return scan.TailBlock.Offset+scan.TailBlock.Size <= f.CommittedBytes, nil
		}
	}
	return false, nil
}

// replicaHasBlock reports whether a scan of the other replica contains
// an identically-placed block.
func replicaHasBlock(scan *fragment.ScanResult, b *fragment.Block) bool {
	if b == nil {
		return false
	}
	for _, ob := range scan.Blocks {
		if ob.Offset == b.Offset && ob.Size == b.Size {
			return true
		}
	}
	return false
}

func (c *Client) openSealed(sealed []byte) ([]byte, error) {
	return c.sealer.Open(sealed)
}

// ReadAll scans every assignment of a snapshot (in parallel) and returns
// all visible rows. Row order across assignments is by storage sequence.
func (c *Client) ReadAll(ctx context.Context, table meta.TableID, snapshotTS truetime.Timestamp) ([]rowenc.Stamped, *ScanPlan, error) {
	plan, err := c.Plan(ctx, table, snapshotTS)
	if err != nil {
		return nil, nil, err
	}
	results := make([][]rowenc.Stamped, len(plan.Assignments))
	errs := make([]error, len(plan.Assignments))
	var wg sync.WaitGroup
	for i, a := range plan.Assignments {
		wg.Add(1)
		go func(i int, a Assignment) {
			defer wg.Done()
			results[i], errs[i] = c.Scan(ctx, plan, a)
		}(i, a)
	}
	wg.Wait()
	var all []rowenc.Stamped
	for i := range results {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		all = append(all, results[i]...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all, plan, nil
}
