package client

import (
	"container/list"
	"sync"

	"vortex/internal/disktier"
	"vortex/internal/meta"
	"vortex/internal/ros"
	"vortex/internal/schema"
	"vortex/internal/truetime"
)

// ReadCache is a byte-bounded LRU over decoded fragment contents, keyed
// by fragment path. It is the client half of the paper's §7 bargain:
// sealed fragments are immutable, so repeated selective scans should not
// re-fetch and re-decode them from Colossus on every query.
//
// The cache is snapshot-safe by construction:
//
//   - Only immutable bytes are cached. ROS fragment files never change
//     after being written, and sealed-WOS entries are keyed by the
//     fragment's CommittedBytes so a record refresh that moves the
//     sealed boundary invalidates the entry. Live streamlet-tail files
//     bypass the cache entirely (the scan path never consults it for
//     live assignments).
//   - An entry holds the full decoded fragment, not a per-snapshot
//     subset: snapshot filtering (block/row timestamps, deletion masks,
//     projections) is re-applied on every scan, so one entry serves
//     every snapshot correctly.
//   - Physical file deletion (SMS groomer, heartbeat-driven server GC)
//     calls Invalidate with the deleted paths before any later scan can
//     miss against the now-absent file. This matters because Spanner is
//     MVCC: an old-snapshot read view still lists a GC'd fragment, and
//     without invalidation the cache would happily serve its bytes
//     forever.
//
// A nil *ReadCache is valid and disabled: every method no-ops.
//
// The cache may carry an optional on-disk middle tier (disktier.Tier)
// holding raw fragment file bytes: a RAM miss falls through to disk and
// a disk miss fetches from Colossus, back-filling both tiers. The disk
// tier has its own lock — file IO never runs under this cache's mutex.
type ReadCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used

	disk *disktier.Tier // optional middle tier; nil = RAM-only

	hits            int64
	misses          int64
	bytesSaved      int64
	evictions       int64
	invalidations   int64
	oversizeRejects int64
}

// wosBlock is one decoded data block of a sealed WOS fragment. Blocks —
// not flat rows — are cached because the scan loop's snapshot filter is
// two-level: a block whose timestamp is past the snapshot ends the whole
// fragment, while a row past the snapshot ends only its block.
type wosBlock struct {
	Timestamp truetime.Timestamp
	StartRow  int64 // streamlet-local row offset of the block's first row
	Rows      []schema.Row
}

// rosRowMemo is a fully assembled, unmasked PosRow view of a ROS
// fragment under one (schema arity, projection) key. Scans with an
// empty deletion mask return the slice unmodified, so consumers must
// treat it as read-only like every other cached object.
type rosRowMemo struct {
	fragID meta.FragmentID
	rows   []PosRow
}

// wosRowMemo is the fully visible PosRow view of a sealed WOS fragment:
// valid only for scans whose snapshot covers maxRowTS and whose
// assignment applies no mask or visibility restriction. maxRowTS is the
// commit timestamp of the fragment's newest row — WOS storage sequence
// numbers are timestamp-assigned (seq = block TrueTime timestamp + row
// index within the block, see assembleWOS), so the newest row's seq IS
// its commit timestamp and the snapshot guard compares like with like.
type wosRowMemo struct {
	fragID         meta.FragmentID
	streamletStart int64
	maxRowTS       truetime.Timestamp
	rows           []PosRow
}

// maxRowMemos bounds how many projection variants one ROS entry
// memoizes before recycling.
const maxRowMemos = 4

// cacheEntry is one fragment's decoded contents. Exactly one of ros/wos
// is set. Cached data is shared across scans and must be treated as
// read-only by every consumer.
type cacheEntry struct {
	path string
	size int64 // raw file bytes this entry saves per hit

	ros     *ros.Reader
	rosRows map[string]rosRowMemo // projection key → assembled rows

	wos            []wosBlock
	committedBytes int64 // sealed boundary the wos blocks were decoded under
	wosRows        *wosRowMemo
}

// NewReadCache returns a cache bounded to maxBytes of raw fragment
// bytes, or nil (disabled) when maxBytes <= 0.
func NewReadCache(maxBytes int64) *ReadCache {
	return NewTiered(maxBytes, nil)
}

// NewTiered returns a cache with an optional on-disk middle tier. The
// result is nil (fully disabled) only when both tiers are disabled;
// with maxBytes <= 0 and a live disk tier the RAM LRU stores nothing
// but the cache object still exists, so GC invalidation fanout and the
// disk fall-through keep working.
func NewTiered(maxBytes int64, disk *disktier.Tier) *ReadCache {
	if maxBytes <= 0 && disk == nil {
		return nil
	}
	return &ReadCache{
		maxBytes: maxBytes,
		disk:     disk,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// CacheStats is a point-in-time snapshot of the cache counters, RAM
// tier first, then the optional on-disk middle tier (all Disk* fields
// are zero without one).
type CacheStats struct {
	Hits            int64
	Misses          int64
	BytesSaved      int64 // raw Colossus bytes not re-read thanks to hits
	Evictions       int64
	Invalidations   int64
	OversizeRejects int64 // puts dropped because one entry exceeds MaxBytes
	Entries         int
	SizeBytes       int64
	MaxBytes        int64

	DiskHits          int64
	DiskMisses        int64
	DiskBytesSaved    int64 // raw Colossus bytes served from disk instead
	DiskEvictions     int64
	DiskInvalidations int64
	DiskCorruptions   int64 // disk entries dropped for failing CRC/format checks
	PrefetchFetched   int64 // fragments warmed into the disk tier ahead of scans
	PrefetchSkipped   int64 // prefetch candidates already cached or in flight
	DiskEntries       int
	DiskSizeBytes     int64
	DiskMaxBytes      int64
}

// HitRatio returns Hits/(Hits+Misses), or 0 with no lookups.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns the current counters across both tiers. Safe on a nil
// cache.
func (c *ReadCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	ds := c.disk.Stats() // own lock; take it before c.mu to keep ordering trivial
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:            c.hits,
		Misses:          c.misses,
		BytesSaved:      c.bytesSaved,
		Evictions:       c.evictions,
		Invalidations:   c.invalidations,
		OversizeRejects: c.oversizeRejects,
		Entries:         len(c.entries),
		SizeBytes:       c.size,
		MaxBytes:        c.maxBytes,

		DiskHits:          ds.Hits,
		DiskMisses:        ds.Misses,
		DiskBytesSaved:    ds.BytesSaved,
		DiskEvictions:     ds.Evictions,
		DiskInvalidations: ds.Invalidations,
		DiskCorruptions:   ds.Corruptions,
		PrefetchFetched:   ds.PrefetchFetched,
		PrefetchSkipped:   ds.PrefetchSkipped,
		DiskEntries:       ds.Entries,
		DiskSizeBytes:     ds.SizeBytes,
		DiskMaxBytes:      ds.MaxBytes,
	}
}

// Disk returns the on-disk middle tier, or nil. Safe on a nil cache.
func (c *ReadCache) Disk() *disktier.Tier {
	if c == nil {
		return nil
	}
	return c.disk
}

// diskGet returns raw fragment file bytes from the disk tier, or
// ok=false on a miss (or with no disk tier).
func (c *ReadCache) diskGet(path string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	return c.disk.Get(path)
}

// diskPut back-fills raw fragment file bytes into the disk tier.
func (c *ReadCache) diskPut(path string, data []byte) {
	if c == nil {
		return
	}
	c.disk.Put(path, data)
}

// peekROS returns the cached reader without touching counters or LRU
// order. The singleflight fill uses it to re-check after winning the
// flight: the losing scan already counted its miss, so a silent peek
// keeps hit/miss accounting one-per-scan.
func (c *ReadCache) peekROS(path string) *ros.Reader {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[path]; ok {
		return el.Value.(*cacheEntry).ros
	}
	return nil
}

// peekWOS is peekROS for sealed-WOS block entries.
func (c *ReadCache) peekWOS(path string, committedBytes int64) ([]wosBlock, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.ros != nil || e.committedBytes != committedBytes {
		return nil, false
	}
	return e.wos, true
}

// getROS returns the cached reader for path, or nil on a miss.
func (c *ReadCache) getROS(path string) *ros.Reader {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok || el.Value.(*cacheEntry).ros == nil {
		c.misses++
		return nil
	}
	e := el.Value.(*cacheEntry)
	c.lru.MoveToFront(el)
	c.hits++
	c.bytesSaved += e.size
	return e.ros
}

// putROS caches a decoded ROS reader whose raw file was size bytes.
func (c *ReadCache) putROS(path string, rd *ros.Reader, size int64) {
	if c == nil || rd == nil {
		return
	}
	c.put(&cacheEntry{path: path, size: size, ros: rd})
}

// getWOS returns the cached decoded blocks of a sealed WOS fragment. A
// committedBytes mismatch means the entry was decoded under a different
// sealed boundary and counts as a miss (the next put overwrites it).
func (c *ReadCache) getWOS(path string, committedBytes int64) ([]wosBlock, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.ros != nil || e.committedBytes != committedBytes {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.bytesSaved += e.size
	return e.wos, true
}

// putWOS caches the decoded data blocks of a sealed WOS fragment.
func (c *ReadCache) putWOS(path string, committedBytes int64, blocks []wosBlock, size int64) {
	if c == nil {
		return
	}
	c.put(&cacheEntry{path: path, size: size, wos: blocks, committedBytes: committedBytes})
}

// getROSRows returns the memoized row assembly for a projection of a
// cached ROS fragment. A memo hit counts as a cache hit (it saves the
// same raw bytes a reader hit would, plus the assembly); a memo miss
// counts nothing — the follow-up getROS/getWOS lookup does the
// accounting, so one scan never double-counts.
func (c *ReadCache) getROSRows(path, projKey string, fragID meta.FragmentID) ([]PosRow, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	m, ok := e.rosRows[projKey]
	if !ok || m.fragID != fragID {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.bytesSaved += e.size
	return m.rows, true
}

// putROSRows memoizes an assembled projection of a cached ROS fragment.
// The memo only attaches to an existing entry: if the reader itself was
// never cached (or was evicted), there is nothing to hang it on.
func (c *ReadCache) putROSRows(path, projKey string, fragID meta.FragmentID, rows []PosRow) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.ros == nil {
		return
	}
	if e.rosRows == nil {
		e.rosRows = make(map[string]rosRowMemo, maxRowMemos)
	}
	if len(e.rosRows) >= maxRowMemos {
		for k := range e.rosRows {
			delete(e.rosRows, k)
			break
		}
	}
	e.rosRows[projKey] = rosRowMemo{fragID: fragID, rows: rows}
}

// getWOSRows returns the memoized full-visibility rows of a sealed WOS
// fragment, provided the memo matches the assignment's identity and the
// snapshot covers its newest row. Hit accounting mirrors getROSRows: a
// memo hit counts, a miss defers to the getWOS lookup that follows.
func (c *ReadCache) getWOSRows(path string, committedBytes int64, fragID meta.FragmentID, streamletStart int64, snapshotTS truetime.Timestamp) ([]PosRow, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.ros != nil || e.committedBytes != committedBytes || e.wosRows == nil {
		return nil, false
	}
	m := e.wosRows
	if m.fragID != fragID || m.streamletStart != streamletStart || m.maxRowTS > snapshotTS {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.bytesSaved += e.size
	return m.rows, true
}

// putWOSRows memoizes the full-visibility row assembly of a sealed WOS
// fragment onto its existing cache entry.
func (c *ReadCache) putWOSRows(path string, committedBytes int64, m *wosRowMemo) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.ros != nil || e.committedBytes != committedBytes {
		return
	}
	e.wosRows = m
}

func (c *ReadCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes <= 0 {
		return // RAM tier disabled (disk-only configuration)
	}
	if e.size > c.maxBytes {
		// Admitting it would evict the whole cache for one entry. A
		// misconfigured tiny cache used to report only misses here with no
		// explanation; the counter makes the drop observable.
		c.oversizeRejects++
		return
	}
	if old, ok := c.entries[e.path]; ok {
		c.size -= old.Value.(*cacheEntry).size
		c.lru.Remove(old)
		delete(c.entries, e.path)
	}
	c.entries[e.path] = c.lru.PushFront(e)
	c.size += e.size
	for c.size > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, v.path)
		c.size -= v.size
		c.evictions++
	}
}

// Invalidate drops the entries for the given fragment paths and returns
// how many RAM entries were present. GC hooks (SMS groomer,
// stream-server heartbeat deletion) call this with the paths they
// physically deleted. The disk tier is unlinked FIRST, before the RAM
// entries are dropped and before Invalidate returns: a scan racing the
// GC can then at worst hit the still-valid RAM entry, never re-fill RAM
// from a disk entry that outlived its fragment.
func (c *ReadCache) Invalidate(paths ...string) int {
	if c == nil {
		return 0
	}
	c.disk.Invalidate(paths...)
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range paths {
		if el, ok := c.entries[p]; ok {
			c.size -= el.Value.(*cacheEntry).size
			c.lru.Remove(el)
			delete(c.entries, p)
			c.invalidations++
			n++
		}
	}
	return n
}

// Contains reports whether path currently has an entry (test helper).
func (c *ReadCache) Contains(path string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[path]
	return ok
}
