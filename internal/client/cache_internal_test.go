package client

import (
	"testing"

	"vortex/internal/ros"
	"vortex/internal/schema"
	"vortex/internal/truetime"
)

func TestFragIndexFromPath(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"tables/t/sl-1/f-0", 0},
		{"tables/t/sl-1/f-17", 17},
		{"a/b/f-3.groomed", 3}, // suffix after the digit run
		{"a/b/f-3/part", 3},    // nested segment after the index
		{"a/f-2/x/f-9", 9},     // last "/f-" wins
		{"f-4", -1},            // no "/f-" separator
		{"a/b/f-", -1},         // no digits at all
		{"a/b/f-x7", -1},       // digits must lead the segment
		{"a/b/g-7", -1},        // wrong marker
		{"", -1},
		{"a/b/f-00012", 12}, // leading zeros
	}
	for _, c := range cases {
		if got := fragIndexFromPath(c.path); got != c.want {
			t.Errorf("fragIndexFromPath(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestReadCacheNilSafe(t *testing.T) {
	var c *ReadCache // NewReadCache(0) returns nil: the disabled cache
	if NewReadCache(0) != nil || NewReadCache(-1) != nil {
		t.Fatal("non-positive budget must disable the cache")
	}
	if rd := c.getROS("p"); rd != nil {
		t.Fatal("nil cache returned a reader")
	}
	if _, ok := c.getWOS("p", 1); ok {
		t.Fatal("nil cache returned wos blocks")
	}
	c.putROS("p", &ros.Reader{}, 10)
	c.putWOS("p", 1, nil, 10)
	if n := c.Invalidate("p"); n != 0 {
		t.Fatalf("nil cache invalidated %d entries", n)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestReadCacheLRUEviction(t *testing.T) {
	c := NewReadCache(100)
	c.putROS("a", &ros.Reader{}, 40)
	c.putROS("b", &ros.Reader{}, 40)
	// Touch "a" so "b" is the least recently used entry.
	if c.getROS("a") == nil {
		t.Fatal("miss on a")
	}
	// 40+40+40 > 100: inserting "c" must evict "b", not "a".
	c.putROS("c", &ros.Reader{}, 40)
	if !c.Contains("a") || !c.Contains("c") || c.Contains("b") {
		t.Fatalf("eviction order wrong: a=%v b=%v c=%v",
			c.Contains("a"), c.Contains("b"), c.Contains("c"))
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.SizeBytes != 80 {
		t.Fatalf("size = %d, want 80", st.SizeBytes)
	}
	// An entry larger than the whole budget is refused outright.
	c.putROS("huge", &ros.Reader{}, 101)
	if c.Contains("huge") {
		t.Fatal("oversized entry was cached")
	}
}

func TestReadCacheBytesSavedAndHitRatio(t *testing.T) {
	c := NewReadCache(1 << 20)
	c.putROS("a", &ros.Reader{}, 1000)
	if c.getROS("a") == nil || c.getROS("a") == nil {
		t.Fatal("expected hits")
	}
	c.getROS("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if st.BytesSaved != 2000 {
		t.Fatalf("bytesSaved = %d, want 2000", st.BytesSaved)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", got)
	}
}

func TestReadCacheWOSCommittedBytesMismatch(t *testing.T) {
	c := NewReadCache(1 << 20)
	blocks := []wosBlock{{Timestamp: truetime.Timestamp(7), StartRow: 0, Rows: []schema.Row{{}}}}
	c.putWOS("p", 512, blocks, 100)
	if got, ok := c.getWOS("p", 512); !ok || len(got) != 1 {
		t.Fatal("expected hit at matching committedBytes")
	}
	// A record refresh moved the sealed boundary: the entry is stale.
	if _, ok := c.getWOS("p", 768); ok {
		t.Fatal("served wos blocks decoded under a different sealed boundary")
	}
	// Kind mismatch: a wos entry must not satisfy a ros lookup and vice
	// versa.
	if c.getROS("p") != nil {
		t.Fatal("wos entry served as ros reader")
	}
	c.putROS("r", &ros.Reader{}, 10)
	if _, ok := c.getWOS("r", 10); ok {
		t.Fatal("ros entry served as wos blocks")
	}
}

func TestReadCacheInvalidate(t *testing.T) {
	c := NewReadCache(1 << 20)
	c.putROS("a", &ros.Reader{}, 10)
	c.putROS("b", &ros.Reader{}, 20)
	if n := c.Invalidate("a", "nope"); n != 1 {
		t.Fatalf("invalidated %d, want 1", n)
	}
	if c.Contains("a") || !c.Contains("b") {
		t.Fatal("wrong entry invalidated")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.SizeBytes != 20 {
		t.Fatalf("size = %d, want 20", st.SizeBytes)
	}
	if c.getROS("a") != nil {
		t.Fatal("invalidated entry still served")
	}
}

func TestReadCacheOverwriteSamePath(t *testing.T) {
	c := NewReadCache(1 << 20)
	c.putROS("a", &ros.Reader{}, 10)
	c.putROS("a", &ros.Reader{}, 30)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.SizeBytes != 30 {
		t.Fatalf("size = %d, want 30 (old entry's bytes must be released)", st.SizeBytes)
	}
}
