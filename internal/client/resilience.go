// Resilience surface of the client: the unified error model, the retry
// policy (per-attempt deadlines, capped exponential backoff with
// jitter, hedged appends), per-append options, and the counters that
// make retry behaviour observable.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vortex/internal/meta"
	"vortex/internal/metrics"
	"vortex/internal/rpc"
	"vortex/internal/sms"
)

// ErrorCode classifies a client failure.
type ErrorCode string

const (
	// CodeWrongOffset: the pinned append offset does not match the
	// stream's length — another writer got there first (§4.2.2).
	CodeWrongOffset ErrorCode = "WRONG_OFFSET"
	// CodeStreamFinalized: the stream accepts no further appends.
	CodeStreamFinalized ErrorCode = "STREAM_FINALIZED"
	// CodeExhausted: the retry policy ran out of attempts.
	CodeExhausted ErrorCode = "EXHAUSTED"
	// CodeUnavailable: the control or data plane could not be reached.
	CodeUnavailable ErrorCode = "UNAVAILABLE"
	// CodeInvalid: the request itself is bad (payload, schema).
	CodeInvalid ErrorCode = "INVALID"
	// CodeResourceExhausted: admission control shed the request before
	// any durable effect. Always retryable; the error's RetryAfter is
	// the server-suggested minimum wait.
	CodeResourceExhausted ErrorCode = "RESOURCE_EXHAUSTED"
)

// Error is the unified client error: a stable code, the operation that
// failed, whether retrying could help, and the underlying cause.
type Error struct {
	Code      ErrorCode
	Op        string
	Retryable bool
	// RetryAfter, when positive, is the server-suggested minimum wait
	// before retrying (RESOURCE_EXHAUSTED push-back). Callers that see
	// it should not retry sooner.
	RetryAfter time.Duration
	Err        error
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("client: %s: %s: %v", e.Op, e.Code, e.Err)
	}
	return fmt.Sprintf("client: %s: %s", e.Op, e.Code)
}

func (e *Error) Unwrap() error { return e.Err }

// Is maps codes onto the historical sentinel errors, so pre-redesign
// errors.Is checks keep working against the structured form.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrWrongOffset:
		return e.Code == CodeWrongOffset
	case ErrStreamFinalized:
		return e.Code == CodeStreamFinalized
	case ErrExhausted:
		return e.Code == CodeExhausted
	case ErrUnavailable:
		return e.Code == CodeUnavailable
	case ErrResourceExhausted, sms.ErrResourceExhausted:
		return e.Code == CodeResourceExhausted
	}
	return false
}

func newError(code ErrorCode, op string, retryable bool, err error) *Error {
	return &Error{Code: code, Op: op, Retryable: retryable, Err: err}
}

// RetryPolicy governs every retried client operation.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included).
	MaxAttempts int
	// InitialBackoff is the delay before the second attempt; each
	// further attempt multiplies it by Multiplier up to MaxBackoff.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64
	// Jitter spreads each backoff uniformly in ±Jitter (e.g. 0.2 =
	// ±20%), decorrelating retry storms across writers.
	Jitter float64
	// PerAttemptTimeout bounds one append attempt; zero disables it.
	// The overall call is bounded by ctx (or WithDeadline).
	PerAttemptTimeout time.Duration
	// HedgeDelay, when positive, races a second copy of a slow
	// offset-pinned unary append after this delay; the server's
	// retransmission memo dedupes the loser. Zero disables hedging.
	HedgeDelay time.Duration
	// RetryBudget caps the client's outstanding retry debt: each retry
	// spends one token, each success refunds half a token (up to the
	// cap), and a client out of tokens fails fast instead of joining a
	// retry storm against an overloaded service. Zero takes the default
	// (256); negative disables budgeting.
	RetryBudget int
}

// DefaultRetryPolicy returns the production-like policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    6,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.2,
		RetryBudget:    256,
	}
}

// withDefaults fills unset fields; a zero policy becomes the default.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p == (RetryPolicy{}) {
		return DefaultRetryPolicy()
	}
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = d.InitialBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.RetryBudget == 0 {
		p.RetryBudget = d.RetryBudget
	}
	return p
}

// backoffFor returns the jittered delay before the given attempt
// (attempt 1 = first retry). The jitter RNG is seeded from
// Options.Seed, so a seeded client backs off deterministically.
func (c *Client) backoffFor(attempt int) time.Duration {
	pol := c.opts.Retry
	if attempt <= 0 || pol.InitialBackoff <= 0 {
		return 0
	}
	d := float64(pol.InitialBackoff)
	for i := 1; i < attempt; i++ {
		d *= pol.Multiplier
		if pol.MaxBackoff > 0 && d >= float64(pol.MaxBackoff) {
			break
		}
	}
	if pol.MaxBackoff > 0 && d > float64(pol.MaxBackoff) {
		d = float64(pol.MaxBackoff)
	}
	if pol.Jitter > 0 {
		c.rngMu.Lock()
		d *= 1 + pol.Jitter*(2*c.rng.Float64()-1)
		c.rngMu.Unlock()
	}
	return time.Duration(d)
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableErr reports whether another attempt could succeed: transport
// unreachability (a crashed or partitioned task), in-transit message
// loss, and control-plane unavailability are transient; everything else
// is not.
func retryableErr(err error) bool {
	var e *Error
	if errors.As(err, &e) {
		return e.Retryable
	}
	var rre *ReplicatedReadError
	if errors.As(err, &rre) {
		return rre.retryable()
	}
	return errors.Is(err, rpc.ErrUnreachable) ||
		errors.Is(err, rpc.ErrDropped) ||
		errors.Is(err, sms.ErrUnavailable) ||
		errors.Is(err, sms.ErrResourceExhausted)
}

// pushBackHint extracts the server-suggested backoff from an admission
// push-back anywhere in err's chain (zero if none).
func pushBackHint(err error) time.Duration {
	var pb *sms.PushBackError
	if errors.As(err, &pb) {
		return pb.RetryAfter
	}
	var ce *Error
	if errors.As(err, &ce) && ce.Code == CodeResourceExhausted {
		return ce.RetryAfter
	}
	return 0
}

// RetryAfter returns the server-suggested minimum wait carried by a
// RESOURCE_EXHAUSTED push-back anywhere in err's chain (zero if none).
// Callers driving their own retry loops should never retry a shed
// request sooner than this.
func RetryAfter(err error) time.Duration { return pushBackHint(err) }

// takeRetryToken spends one retry-budget token; false means the budget
// is exhausted and the caller should fail fast rather than retry.
func (c *Client) takeRetryToken() bool {
	if c.opts.Retry.RetryBudget < 0 {
		return true
	}
	c.budgetMu.Lock()
	defer c.budgetMu.Unlock()
	if c.budgetTokens < 1 {
		c.budgetExhausted.Add(1)
		return false
	}
	c.budgetTokens--
	return true
}

// creditRetryToken refunds half a token on success, up to the cap, so a
// healthy client regains headroom but a persistently failing one cannot
// sustain an unbounded retry rate.
func (c *Client) creditRetryToken() {
	cap := c.opts.Retry.RetryBudget
	if cap < 0 {
		return
	}
	c.budgetMu.Lock()
	c.budgetTokens += 0.5
	if c.budgetTokens > float64(cap) {
		c.budgetTokens = float64(cap)
	}
	c.budgetMu.Unlock()
}

// AppendOption modifies one append call.
type AppendOption interface {
	applyAppend(*appendConfig)
}

type appendConfig struct {
	offset   int64 // -1 appends at the current end
	deadline time.Duration
}

type offsetOption int64

func (o offsetOption) applyAppend(c *appendConfig) { c.offset = int64(o) }

// AtOffset pins the rows to land at stream offset n — the exactly-once
// mechanism of §4.2.2. Appends racing for the same offset lose with
// CodeWrongOffset.
func AtOffset(n int64) AppendOption { return offsetOption(n) }

type deadlineOption time.Duration

func (d deadlineOption) applyAppend(c *appendConfig) { c.deadline = time.Duration(d) }

// WithDeadline bounds the whole append call — retries, backoff and
// hedges included — by d.
func WithDeadline(d time.Duration) AppendOption { return deadlineOption(d) }

func resolveAppendOpts(opts []AppendOption) appendConfig {
	cfg := appendConfig{offset: -1}
	for _, o := range opts {
		if o != nil {
			o.applyAppend(&cfg)
		}
	}
	return cfg
}

// Metrics is a snapshot of the client's resilience counters.
type Metrics struct {
	// Retries counts append attempts beyond each call's first.
	Retries int64
	// Rotations counts streamlet rotations onto a different server.
	Rotations int64
	// Hedges counts hedge sends; HedgeWins how often the hedge's
	// response arrived first.
	Hedges    int64
	HedgeWins int64
	// SMSRetries counts retried control-plane calls.
	SMSRetries int64
	// ShedPushBacks counts RESOURCE_EXHAUSTED push-backs received (data
	// or control plane); RetryBudgetExhausted counts retries refused
	// because the budget ran dry.
	ShedPushBacks        int64
	RetryBudgetExhausted int64
	// AppendLatency is the end-to-end Append latency distribution
	// (successful calls, retries included).
	AppendLatency *metrics.Histogram
	// ScanLatency is the per-assignment ScanDetailed latency
	// distribution (successful scans, cache hits and misses alike).
	ScanLatency *metrics.Histogram
	// Cache is the read cache's counter snapshot (zero when disabled).
	Cache CacheStats
	// Read-session consumption counters: record batches and batch bytes
	// delivered to this client's shard iterators, shard splits it
	// triggered, and checkpoint-resumed shard streams.
	ReadBatches       int64
	ReadBatchBytes    int64
	ShardSplits       int64
	CheckpointResumes int64
}

// Metrics returns a snapshot of the client's resilience counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Retries:              c.retries.Value(),
		Rotations:            c.rotations.Value(),
		Hedges:               c.hedges.Value(),
		HedgeWins:            c.hedgeWins.Value(),
		SMSRetries:           c.smsRetries.Value(),
		ShedPushBacks:        c.shedPushBacks.Value(),
		RetryBudgetExhausted: c.budgetExhausted.Value(),
		AppendLatency:        c.appendLatency.Snapshot(),
		ScanLatency:          c.scanLatency.Snapshot(),
		Cache:                c.cache.Stats(),

		ReadBatches:       c.rsBatches.Value(),
		ReadBatchBytes:    c.rsBytes.Value(),
		ShardSplits:       c.rsSplits.Value(),
		CheckpointResumes: c.rsResumes.Value(),
	}
}

// smsRetry is a unary SMS call retried under the client's policy while
// the failure looks transient (an unreachable task mid-restart,
// placement exhaustion during an outage).
func (c *Client) smsRetry(ctx context.Context, table meta.TableID, method string, req any) (any, error) {
	pol := c.opts.Retry
	attempts := pol.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.smsRetries.Add(1)
			if !c.takeRetryToken() {
				break
			}
			// Honor a control-plane push-back hint: never retry sooner
			// than the server asked, whatever the backoff schedule says.
			d := c.backoffFor(attempt)
			if hint := pushBackHint(lastErr); hint > d {
				d = hint
			}
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
		}
		resp, err := c.sms(ctx, table, method, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, sms.ErrResourceExhausted) {
			c.shedPushBacks.Add(1)
		}
		if !retryableErr(err) {
			return nil, err
		}
	}
	// A push-back exhausting its attempts stays retryable-typed: the
	// request was shed, not failed, and the caller may try again after
	// the hint.
	if hint := pushBackHint(lastErr); hint > 0 || errors.Is(lastErr, sms.ErrResourceExhausted) {
		return nil, &Error{Code: CodeResourceExhausted, Op: method, Retryable: true, RetryAfter: hint, Err: lastErr}
	}
	// Likewise a transport-loss cause (task unreachable mid-restart,
	// connection reset): SMS control-plane calls are idempotent, so
	// exhausting in-process attempts must not demote the error to
	// terminal — the caller's next attempt is safe.
	if retryableErr(lastErr) {
		return nil, newError(CodeUnavailable, method, true, lastErr)
	}
	return nil, newError(CodeUnavailable, method, false, lastErr)
}

// newRNG seeds the jitter RNG; distinct odd multiplier decorrelates it
// from other consumers of the same seed.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*2654435761 + 97))
}
