package client_test

import (
	"testing"
	"time"

	"vortex/internal/meta"
	"vortex/internal/optimizer"
)

// TestScanMemoReturnsSharedSlice: with no deletion mask, repeated scans
// of the same sealed fragment must return the memoized slice itself —
// the fix for re-materializing rows on every scan.
func TestScanMemoReturnsSharedSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	ingestRound(t, ctx, c, 0, 40)
	r.HeartbeatAll(ctx, false)

	check := func(format meta.Format) {
		plan, err := c.Plan(ctx, "d.cache", 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range plan.Assignments {
			if a.Frag.Format != format || a.Live {
				continue
			}
			first, err := c.ScanDetailed(ctx, plan, a)
			if err != nil {
				t.Fatal(err)
			}
			second, err := c.ScanDetailed(ctx, plan, a)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) == 0 || len(first) != len(second) {
				t.Fatalf("%v scan returned %d then %d rows", format, len(first), len(second))
			}
			if &first[0] != &second[0] {
				t.Fatalf("%v repeat scan re-materialized rows instead of returning the memo", format)
			}
		}
	}
	check(meta.WOS)

	time.Sleep(12 * time.Millisecond)
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	check(meta.ROS)
}

// TestScanBatchParity: the columnar scan must agree row-for-row with
// ScanDetailed on the same assignment.
func TestScanBatchParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	ingestRound(t, ctx, c, 0, 50)
	r.HeartbeatAll(ctx, false)
	time.Sleep(12 * time.Millisecond)
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Plan(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	sawColumnar := false
	for _, a := range plan.Assignments {
		b, err := c.ScanBatch(ctx, plan, a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.ScanDetailed(ctx, plan, a)
		if err != nil {
			t.Fatal(err)
		}
		if a.Frag.Format == meta.ROS && !a.Live {
			if !b.Columnar() {
				t.Fatal("flat ROS assignment did not scan columnar")
			}
			sawColumnar = true
		}
		got := b.PosRows()
		if len(got) != len(want) || b.NumVisible() != len(want) {
			t.Fatalf("batch has %d rows (visible %d), ScanDetailed %d", len(got), b.NumVisible(), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.Stamped.Seq != w.Stamped.Seq || g.FragLocal != w.FragLocal || g.FragID != w.FragID {
				t.Fatalf("row %d provenance: got %+v want %+v", i, g, w)
			}
			if len(g.Stamped.Row.Values) != len(w.Stamped.Row.Values) {
				t.Fatalf("row %d arity: %d vs %d", i, len(g.Stamped.Row.Values), len(w.Stamped.Row.Values))
			}
			for k := range w.Stamped.Row.Values {
				if g.Stamped.Row.Values[k].String() != w.Stamped.Row.Values[k].String() {
					t.Fatalf("row %d col %d: %v vs %v", i, k, g.Stamped.Row.Values[k], w.Stamped.Row.Values[k])
				}
			}
		}
	}
	if !sawColumnar {
		t.Fatal("conversion produced no columnar assignments")
	}
}
