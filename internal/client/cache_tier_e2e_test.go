package client_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vortex/internal/client"
	"vortex/internal/core"
	"vortex/internal/meta"
	"vortex/internal/optimizer"
	"vortex/internal/streamserver"
)

// diskCacheEnv is cacheEnv with the on-disk middle tier enabled. The
// RAM tier is kept deliberately tiny so sealed fragments overflow to
// disk and the fall-through path actually runs.
func diskCacheEnv(t *testing.T, ramBytes int64) (*core.Region, *client.Client, context.Context) {
	t.Helper()
	r, _, ctx := cacheEnv(t)
	opts := client.DefaultOptions()
	opts.ReadCacheBytes = ramBytes
	opts.DiskCacheDir = t.TempDir()
	opts.DiskCacheBytes = 64 << 20
	c := r.NewClient(opts)
	return r, c, ctx
}

// TestSingleflightColdScan is the thundering-herd regression test: N
// concurrent scans of one uncached sealed fragment must together pay
// exactly one Colossus read — the miss fill is singleflighted, the
// losers share the winner's decode.
func TestSingleflightColdScan(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := cacheEnv(t)
	ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	plan, err := c.Plan(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	var sealed *client.Assignment
	for i := range plan.Assignments {
		if a := plan.Assignments[i]; !a.Live && a.Frag.Format == meta.WOS {
			sealed = &plan.Assignments[i]
			break
		}
	}
	if sealed == nil {
		t.Fatal("no sealed WOS assignment in plan")
	}

	const concurrency = 16
	before := r.Colossus.Stats().ReadOps
	var wg sync.WaitGroup
	errs := make([]error, concurrency)
	counts := make([]int, concurrency)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := c.Scan(ctx, plan, *sealed)
			errs[i], counts[i] = err, len(rows)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrency; i++ {
		if errs[i] != nil {
			t.Fatalf("scan %d: %v", i, errs[i])
		}
		if counts[i] != counts[0] {
			t.Fatalf("scan %d returned %d rows, scan 0 returned %d", i, counts[i], counts[0])
		}
	}
	if got := r.Colossus.Stats().ReadOps - before; got != 1 {
		t.Fatalf("%d concurrent cold scans paid %d Colossus reads, want exactly 1", concurrency, got)
	}

	// Same property for the ROS path, with a cold client so nothing is
	// cached yet.
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	cold := r.NewClient(func() client.Options {
		o := client.DefaultOptions()
		o.ReadCacheBytes = 32 << 20
		return o
	}())
	plan, err = cold.Plan(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	var rosA *client.Assignment
	for i := range plan.Assignments {
		if a := plan.Assignments[i]; a.Frag.Format == meta.ROS {
			rosA = &plan.Assignments[i]
			break
		}
	}
	if rosA == nil {
		t.Fatal("no ROS assignment after conversion")
	}
	before = r.Colossus.Stats().ReadOps
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cold.Scan(ctx, plan, *rosA)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrency; i++ {
		if errs[i] != nil {
			t.Fatalf("ROS scan %d: %v", i, errs[i])
		}
	}
	if got := r.Colossus.Stats().ReadOps - before; got != 1 {
		t.Fatalf("%d concurrent cold ROS scans paid %d Colossus reads, want exactly 1", concurrency, got)
	}
}

// TestDiskTierFallThrough: with a RAM tier too small to hold anything,
// a repeated scan must be served from the disk tier — zero additional
// Colossus reads — and the per-tier counters must say so.
func TestDiskTierFallThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := diskCacheEnv(t, 1) // 1-byte RAM tier: everything oversize
	ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	first, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(first) != 30 {
		t.Fatalf("cold read: %d rows, err=%v", len(first), err)
	}
	st := c.ReadCache().Stats()
	if st.DiskEntries == 0 {
		t.Fatalf("cold read did not back-fill the disk tier: %+v", st)
	}
	if st.OversizeRejects == 0 {
		t.Fatalf("1-byte RAM tier should reject every fill as oversize: %+v", st)
	}

	before := r.Colossus.Stats().ReadOps
	second, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(second) != 30 {
		t.Fatalf("warm read: %d rows, err=%v", len(second), err)
	}
	if got := r.Colossus.Stats().ReadOps - before; got != 0 {
		t.Fatalf("warm read paid %d Colossus reads, want 0 (disk tier)", got)
	}
	st = c.ReadCache().Stats()
	if st.DiskHits == 0 || st.DiskBytesSaved == 0 {
		t.Fatalf("warm read did not hit the disk tier: %+v", st)
	}
}

// TestDiskTierInvalidatedByHeartbeatGC mirrors the RAM-tier no-stale-
// read test for the disk tier: once heartbeat GC deletes the sealed WOS
// files, their disk-tier entries must be unlinked before Invalidate
// returns, and an old-snapshot read must fail rather than be served
// from disk.
func TestDiskTierInvalidatedByHeartbeatGC(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := diskCacheEnv(t, 1) // disk-only in practice: RAM rejects all
	streamID := ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	rows, plan, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 30 {
		t.Fatalf("pre-GC read: %d rows, err=%v", len(rows), err)
	}
	oldTS := plan.SnapshotTS
	wosPrefix := streamserver.StreamletPrefix("d.cache", meta.StreamletIDFor(streamID, 0))
	wosPaths, err := r.Colossus.Cluster("alpha").List(wosPrefix)
	if err != nil || len(wosPaths) == 0 {
		t.Fatalf("no WOS files: %v %v", wosPaths, err)
	}
	tier := c.ReadCache().Disk()
	onDisk := 0
	for _, p := range wosPaths {
		if tier.Contains(p) {
			onDisk++
		}
	}
	if onDisk == 0 {
		t.Fatal("sealed WOS fragments were not spilled to the disk tier")
	}

	time.Sleep(12 * time.Millisecond)
	opt := optimizer.New(optimizer.DefaultConfig(), c, r.Net, r.Router(), r.Colossus, r.Clock)
	if _, err := opt.ConvertTable(ctx, "d.cache"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * time.Millisecond)
	r.HeartbeatAll(ctx, true)
	r.HeartbeatAll(ctx, true)

	st := c.ReadCache().Stats()
	if st.DiskInvalidations == 0 {
		t.Fatalf("file GC did not invalidate the disk tier: %+v", st)
	}
	for _, p := range wosPaths {
		if tier.Contains(p) {
			t.Fatalf("GC'd fragment %s still on disk", p)
		}
	}
	// Current snapshot: served by the ROS generation.
	rows, _, err = c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 30 {
		t.Fatalf("post-GC read: %d rows, err=%v", len(rows), err)
	}
	// Old snapshot: its MVCC view lists the GC'd WOS fragments, whose
	// files AND disk-tier entries are gone. Must fail, never serve disk.
	_, _, err = c.ReadAll(ctx, "d.cache", oldTS)
	if err == nil {
		t.Fatal("old-snapshot read after file GC must fail, not serve the disk tier")
	}
	var rre *client.ReplicatedReadError
	if !errors.As(err, &rre) {
		t.Fatalf("old-snapshot read error = %T (%v), want *client.ReplicatedReadError", err, err)
	}
	for _, p := range wosPaths {
		if tier.Contains(p) {
			t.Fatalf("old-snapshot read resurrected GC'd fragment %s on disk", p)
		}
	}
}

// TestPrefetchWarmsDiskTier: prefetching a plan's assignments must fill
// the disk tier so the scans that follow never touch Colossus.
func TestPrefetchWarmsDiskTier(t *testing.T) {
	if testing.Short() {
		t.Skip("cache e2e")
	}
	r, c, ctx := diskCacheEnv(t, 1)
	ingestRound(t, ctx, c, 0, 30)
	r.HeartbeatAll(ctx, false)

	plan, err := c.Plan(ctx, "d.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-c.Prefetch(plan.Assignments)
	st := c.ReadCache().Stats()
	if st.PrefetchFetched == 0 {
		t.Fatalf("prefetch fetched nothing: %+v", st)
	}
	before := r.Colossus.Stats().ReadOps
	rows, _, err := c.ReadAll(ctx, "d.cache", 0)
	if err != nil || len(rows) != 30 {
		t.Fatalf("post-prefetch read: %d rows, err=%v", len(rows), err)
	}
	if got := r.Colossus.Stats().ReadOps - before; got != 0 {
		t.Fatalf("post-prefetch scan paid %d Colossus reads, want 0", got)
	}
	// A second prefetch of the same plan skips every candidate.
	<-c.Prefetch(plan.Assignments)
	if st := c.ReadCache().Stats(); st.PrefetchSkipped == 0 {
		t.Fatalf("re-prefetch did not skip: %+v", st)
	}
}
