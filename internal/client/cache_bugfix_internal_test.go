package client

import (
	"fmt"
	"sync"
	"testing"

	"vortex/internal/disktier"
	"vortex/internal/ros"
	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/truetime"
)

// TestWOSRowMemoSnapshotBoundary pins down the memo guard's domain: the
// memo's maxRowTS is the newest row's commit timestamp (WOS seqs are
// timestamp-assigned), so a snapshot that exactly covers the newest row
// must hit, a snapshot one tick older must miss — even when the
// fragment's sealed boundary lies later than every row. A snapshot
// sitting strictly between the newest row and the sealed boundary sees
// the complete fragment and must be served by the memo.
func TestWOSRowMemoSnapshotBoundary(t *testing.T) {
	c := NewReadCache(1 << 20)
	const (
		path = "wos/d.t/s0/f-0"
		cb   = int64(512)
	)
	// Rows committed at timestamps 100..104; the streamlet sealed at 120.
	var rows []PosRow
	for ts := int64(100); ts <= 104; ts++ {
		rows = append(rows, PosRow{Stamped: rowenc.Stamped{Seq: ts}})
	}
	c.putWOS(path, cb, []wosBlock{{Timestamp: 100}}, 256)
	c.putWOSRows(path, cb, &wosRowMemo{
		fragID:   "f0",
		maxRowTS: truetime.Timestamp(104),
		rows:     rows,
	})

	cases := []struct {
		snapshot truetime.Timestamp
		wantHit  bool
		why      string
	}{
		{103, false, "snapshot older than the newest row truncates the view"},
		{104, true, "snapshot exactly at the newest row covers the full fragment"},
		{105, true, "snapshot between newest row (104) and sealed boundary (120)"},
		{120, true, "snapshot at the sealed boundary"},
	}
	for _, tc := range cases {
		got, ok := c.getWOSRows(path, cb, "f0", 0, tc.snapshot)
		if ok != tc.wantHit {
			t.Errorf("snapshot %d: hit=%v, want %v (%s)", tc.snapshot, ok, tc.wantHit, tc.why)
		}
		if ok && len(got) != len(rows) {
			t.Errorf("snapshot %d: %d rows, want %d", tc.snapshot, len(got), len(rows))
		}
	}
}

// TestOversizeRejectsCounted proves a put larger than the byte bound is
// no longer a silent drop: the entry is still refused (admitting it
// would evict the whole cache) but the rejection is counted.
func TestOversizeRejectsCounted(t *testing.T) {
	c := NewReadCache(100)
	c.putROS("small", &ros.Reader{}, 40)
	c.putROS("huge", &ros.Reader{}, 500)
	c.putWOS("hugewos", 0, []wosBlock{{Timestamp: 1}}, 101)
	st := c.Stats()
	if st.OversizeRejects != 2 {
		t.Fatalf("OversizeRejects = %d, want 2 (%+v)", st.OversizeRejects, st)
	}
	if !c.Contains("small") || c.Contains("huge") || c.Contains("hugewos") {
		t.Fatal("oversize entries admitted or small entry dropped")
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("oversize rejection must not evict resident entries")
	}
}

// TestDiskOnlyCacheNonNil: with a disk tier but no RAM budget the cache
// object must still exist (GC fanout registers it; fall-through needs
// it) while the RAM LRU stores nothing.
func TestDiskOnlyCacheNonNil(t *testing.T) {
	tier, err := disktier.Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTiered(0, tier)
	if c == nil {
		t.Fatal("disk-only cache must be non-nil")
	}
	c.putROS("p", &ros.Reader{}, 10)
	if c.Contains("p") {
		t.Fatal("RAM tier admitted an entry with no RAM budget")
	}
	if st := c.Stats(); st.OversizeRejects != 0 {
		t.Fatalf("disabled RAM tier counted an oversize reject: %+v", st)
	}
	c.diskPut("p", []byte("bytes"))
	if _, ok := c.diskGet("p"); !ok {
		t.Fatal("disk tier not reachable through the cache")
	}
	c.Invalidate("p")
	if _, ok := c.diskGet("p"); ok {
		t.Fatal("Invalidate did not unlink the disk entry")
	}
	if st := c.Stats(); st.DiskInvalidations != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if NewTiered(0, nil) != nil {
		t.Fatal("cache with both tiers disabled must be nil")
	}
}

// TestCacheMemoAttachRace exercises memo attach (putROSRows/putWOSRows)
// racing Invalidate and LRU eviction under a tiny byte bound. The
// assertions are the race detector's — the test just has to survive a
// hostile interleaving.
func TestCacheMemoAttachRace(t *testing.T) {
	tier, err := disktier.Open(t.TempDir(), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTiered(300, tier) // ~3 entries: constant eviction pressure
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("frag-%d", i)
	}
	row := []PosRow{{Stamped: rowenc.Stamped{Seq: 7}}}
	blocks := []wosBlock{{Timestamp: 7, Rows: []schema.Row{schema.NewRow()}}}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				p := paths[(g+i)%len(paths)]
				switch i % 8 {
				case 0:
					c.putROS(p, &ros.Reader{}, 100)
				case 1:
					c.putROSRows(p, "proj", "f", row)
				case 2:
					c.getROSRows(p, "proj", "f")
				case 3:
					c.putWOS(p, 64, blocks, 100)
				case 4:
					c.putWOSRows(p, 64, &wosRowMemo{fragID: "f", maxRowTS: 7, rows: row})
				case 5:
					c.getWOSRows(p, 64, "f", 0, 10)
				case 6:
					c.diskPut(p, []byte("payload"))
					c.diskGet(p)
				default:
					c.Invalidate(p)
				}
			}
		}(g)
	}
	wg.Wait()
}
