package client

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller shares — the classic singleflight
// shape, hand-rolled because the repo takes no external dependencies.
//
// The read path uses it to stop the miss thundering herd: N concurrent
// cold scans of the same fragment used to pay N full Colossus fetches
// and N decodes; under flight only the first does the work.
//
// Errors are not cached: the winning call's error is delivered to every
// waiter of that round, then the key is forgotten so the next caller
// retries fresh.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn once per key at a time. Callers that arrive while a call
// for key is in flight wait for it and share its result.
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err
}
