// Package core wires the Vortex subsystems into a running region: two or
// more Colossus clusters, a regional Spanner database, a pool of SMS
// tasks sharded by Slicer, a pool of Stream Servers per cluster, and the
// placement logic that assigns streamlets to servers by load and health
// (§5.2, §5.3). This is the paper's "BigQuery region" in one process.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vortex/internal/bigmeta"
	"vortex/internal/blockenc"
	"vortex/internal/client"
	"vortex/internal/colossus"
	"vortex/internal/latencymodel"
	"vortex/internal/meta"
	"vortex/internal/rpc"
	"vortex/internal/slicer"
	"vortex/internal/sms"
	"vortex/internal/spanner"
	"vortex/internal/streamserver"
	"vortex/internal/truetime"
)

// Config sizes a region.
type Config struct {
	// Clusters names the Borg/Colossus clusters (≥2, §5.1).
	Clusters []string
	// SMSTasks is the number of control-plane tasks (§5.2.1).
	SMSTasks int
	// StreamServersPerCluster sizes the data plane (§5.3).
	StreamServersPerCluster int
	// Latency is the injected latency profile (zero for tests).
	Latency latencymodel.Profile
	// Seed makes latency sampling deterministic.
	Seed int64
	// ClockEpsilon is the TrueTime uncertainty (default ±4ms).
	ClockEpsilon time.Duration
	// MaxFragmentBytes overrides the fragment rotation size.
	MaxFragmentBytes int64
}

// DefaultConfig returns a two-cluster region with a small server pool.
func DefaultConfig() Config {
	return Config{
		Clusters:                []string{"alpha", "beta"},
		SMSTasks:                2,
		StreamServersPerCluster: 3,
		ClockEpsilon:            4 * time.Millisecond,
	}
}

// Region is a running single-process Vortex region.
type Region struct {
	Colossus *colossus.Region
	DB       *spanner.DB
	Net      *rpc.Network
	Clock    truetime.Clock
	Keyring  *blockenc.Keyring
	Slicer   *slicer.Slicer

	SMSTasks      []*sms.Task
	StreamServers map[string]*streamserver.Server // by address
	BigMeta       *bigmeta.Index

	placer *placer
	router *router

	mu sync.Mutex
}

// NewRegion builds and starts a region.
func NewRegion(cfg Config) *Region {
	if len(cfg.Clusters) < 2 {
		cfg.Clusters = []string{"alpha", "beta"}
	}
	if cfg.SMSTasks <= 0 {
		cfg.SMSTasks = 2
	}
	if cfg.StreamServersPerCluster <= 0 {
		cfg.StreamServersPerCluster = 3
	}
	if cfg.ClockEpsilon <= 0 {
		cfg.ClockEpsilon = 4 * time.Millisecond
	}
	clock := truetime.NewSystem(cfg.ClockEpsilon, 0)
	var sampler *latencymodel.Sampler
	if !cfg.Latency.Zero() {
		sampler = latencymodel.NewSampler(cfg.Latency, cfg.Seed)
	}
	r := &Region{
		Colossus:      colossus.NewRegion(cfg.Clusters...),
		DB:            spanner.NewDB(clock),
		Net:           rpc.NewNetwork(sampler),
		Clock:         clock,
		Keyring:       blockenc.NewKeyring(),
		Slicer:        slicer.New(nil),
		StreamServers: make(map[string]*streamserver.Server),
	}
	if sampler != nil {
		r.Colossus.SetSampler(sampler)
	}
	r.placer = newPlacer(cfg.Clusters)
	r.router = &router{slicer: r.Slicer}
	r.BigMeta = bigmeta.NewIndex()

	for i := 0; i < cfg.SMSTasks; i++ {
		addr := fmt.Sprintf("sms-%d", i)
		task := sms.New(addr, r.DB, r.Net, r.placer)
		task.SetColossus(r.Colossus)
		task.SetFragmentListener(r.BigMeta)
		r.SMSTasks = append(r.SMSTasks, task)
		r.Slicer.AddTask(addr)
	}
	for _, cl := range cfg.Clusters {
		for i := 0; i < cfg.StreamServersPerCluster; i++ {
			addr := fmt.Sprintf("ss-%s-%d", cl, i)
			sscfg := streamserver.DefaultConfig(addr)
			if cfg.MaxFragmentBytes > 0 {
				sscfg.MaxFragmentBytes = cfg.MaxFragmentBytes
			}
			srv := streamserver.New(sscfg, r.Colossus, clock, r.Keyring, r.router, r.Net)
			r.StreamServers[addr] = srv
			r.placer.addServer(addr, cl)
		}
	}
	return r
}

// NewClient returns a client bound to this region.
func (r *Region) NewClient(opts client.Options) *client.Client {
	return client.New(r.Net, r.router, r.Colossus, r.Keyring, r.Clock, opts)
}

// Router exposes the table→SMS routing (used by tools and the optimizer).
func (r *Region) Router() client.Router { return r.router }

// HeartbeatAll drives one heartbeat round on every live Stream Server —
// the simulation's stand-in for the paper's periodic heartbeats (§5.5).
func (r *Region) HeartbeatAll(ctx context.Context, full bool) {
	r.mu.Lock()
	servers := make([]*streamserver.Server, 0, len(r.StreamServers))
	for _, s := range r.StreamServers {
		servers = append(servers, s)
	}
	r.mu.Unlock()
	for _, s := range servers {
		_ = s.HeartbeatNow(ctx, full)
	}
}

// CrashStreamServer simulates a hard Stream Server crash.
func (r *Region) CrashStreamServer(addr string) {
	r.mu.Lock()
	srv := r.StreamServers[addr]
	r.mu.Unlock()
	if srv != nil {
		srv.Crash()
		r.placer.markDead(addr)
	}
}

// RunHeartbeats starts a background heartbeat loop until ctx ends.
func (r *Region) RunHeartbeats(ctx context.Context, every time.Duration) {
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		n := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				n++
				r.HeartbeatAll(ctx, n%10 == 0) // periodic full snapshot (§5.4.3)
			}
		}
	}()
}

// router implements client.Router / streamserver.Router via Slicer.
type router struct {
	slicer *slicer.Slicer
}

// SMSFor returns the SMS task responsible for the table.
func (rt *router) SMSFor(table meta.TableID) (string, error) {
	return rt.slicer.Lookup("table:" + string(table))
}

// placer implements sms.Placer: least-loaded healthy server wins, and
// the replica pair is the server's home cluster plus the next cluster in
// the region (§5.2, §5.6).
type placer struct {
	mu       sync.Mutex
	clusters []string
	servers  map[string]*serverState
}

type serverState struct {
	cluster    string
	load       float64
	quarantine bool
	dead       bool
	placements int
}

func newPlacer(clusters []string) *placer {
	return &placer{clusters: clusters, servers: make(map[string]*serverState)}
}

func (p *placer) addServer(addr, cluster string) {
	p.mu.Lock()
	p.servers[addr] = &serverState{cluster: cluster}
	p.mu.Unlock()
}

func (p *placer) markDead(addr string) {
	p.mu.Lock()
	if s, ok := p.servers[addr]; ok {
		s.dead = true
	}
	p.mu.Unlock()
}

// Pick implements sms.Placer.
func (p *placer) Pick(exclude string) (string, [2]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	type cand struct {
		addr string
		cost float64
	}
	var cands []cand
	for addr, st := range p.servers {
		if st.dead || st.quarantine || addr == exclude {
			continue
		}
		// Load plus a placement-count term keeps assignment spread even
		// before the first heartbeats arrive.
		cands = append(cands, cand{addr, st.load + float64(st.placements)*0.01})
	}
	if len(cands) == 0 {
		return "", [2]string{}, errors.New("core: no healthy stream server available")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].addr < cands[j].addr
	})
	chosen := cands[0].addr
	st := p.servers[chosen]
	st.placements++
	home := st.cluster
	second := home
	for i, c := range p.clusters {
		if c == home {
			second = p.clusters[(i+1)%len(p.clusters)]
			break
		}
	}
	return chosen, [2]string{home, second}, nil
}

// ReportLoad implements sms.Placer.
func (p *placer) ReportLoad(addr string, cpu, mem, throughput float64, quarantine bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.servers[addr]
	if !ok {
		return
	}
	st.load = cpu + mem
	st.quarantine = quarantine
}
