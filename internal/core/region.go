// Package core wires the Vortex subsystems into a running region: two or
// more Colossus clusters, a regional Spanner database, a pool of SMS
// tasks sharded by Slicer, a pool of Stream Servers per cluster, and the
// placement logic that assigns streamlets to servers by load and health
// (§5.2, §5.3). This is the paper's "BigQuery region" in one process.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vortex/internal/bigmeta"
	"vortex/internal/blockenc"
	"vortex/internal/chaos"
	"vortex/internal/client"
	"vortex/internal/colossus"
	"vortex/internal/latencymodel"
	"vortex/internal/meta"
	"vortex/internal/readsession"
	"vortex/internal/rpc"
	"vortex/internal/slicer"
	"vortex/internal/sms"
	"vortex/internal/spanner"
	"vortex/internal/streamserver"
	"vortex/internal/truetime"
)

// Config sizes a region.
type Config struct {
	// Clusters names the Borg/Colossus clusters (≥2, §5.1).
	Clusters []string
	// SMSTasks is the number of control-plane tasks (§5.2.1).
	SMSTasks int
	// StreamServersPerCluster sizes the data plane (§5.3).
	StreamServersPerCluster int
	// Latency is the injected latency profile (zero for tests).
	Latency latencymodel.Profile
	// Seed makes latency sampling deterministic.
	Seed int64
	// ClockEpsilon is the TrueTime uncertainty (default ±4ms).
	ClockEpsilon time.Duration
	// Clock, when non-nil, replaces the region's system TrueTime clock.
	// Deterministic simulation injects a truetime.Manual here so that all
	// commit timestamps, visibility decisions and retention horizons are
	// functions of simulated time only.
	Clock truetime.Clock
	// MaxFragmentBytes overrides the fragment rotation size.
	MaxFragmentBytes int64
	// Chaos, when non-nil, is the fault-injection schedule wired through
	// every subsystem (transport, Colossus, Stream Servers) and granted
	// crash/restart authority over individual tasks.
	Chaos *chaos.Schedule
	// Quotas installs ingestion admission control on every SMS task; the
	// zero value disables it.
	Quotas sms.Quotas
	// HeartbeatCoalesce / HeartbeatMaxStreamlets configure heartbeat
	// batching on every Stream Server (see streamserver.Config).
	HeartbeatCoalesce      time.Duration
	HeartbeatMaxStreamlets int
}

// DefaultConfig returns a two-cluster region with a small server pool.
func DefaultConfig() Config {
	return Config{
		Clusters:                []string{"alpha", "beta"},
		SMSTasks:                2,
		StreamServersPerCluster: 3,
		ClockEpsilon:            4 * time.Millisecond,
	}
}

// Region is a running single-process Vortex region.
type Region struct {
	Colossus *colossus.Region
	DB       *spanner.DB
	Net      *rpc.Network
	Clock    truetime.Clock
	Keyring  *blockenc.Keyring
	Slicer   *slicer.Slicer

	SMSTasks      []*sms.Task
	StreamServers map[string]*streamserver.Server // by address
	BigMeta       *bigmeta.Index
	ReadSessions  *readsession.Server

	placer *placer
	router *router
	chaos  *chaos.Schedule
	cfg    Config

	mu sync.Mutex
	// readCaches are the client fragment caches registered for GC-driven
	// invalidation; every file-deletion hook fans out to all of them.
	readCaches []*client.ReadCache
	// rebalancedKeys counts Slicer keys moved by RebalanceSMS.
	rebalancedKeys int64
}

// NewRegion builds and starts a region.
func NewRegion(cfg Config) *Region {
	if len(cfg.Clusters) < 2 {
		cfg.Clusters = []string{"alpha", "beta"}
	}
	if cfg.SMSTasks <= 0 {
		cfg.SMSTasks = 2
	}
	if cfg.StreamServersPerCluster <= 0 {
		cfg.StreamServersPerCluster = 3
	}
	if cfg.ClockEpsilon <= 0 {
		cfg.ClockEpsilon = 4 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = truetime.NewSystem(cfg.ClockEpsilon, 0)
	}
	var sampler *latencymodel.Sampler
	if !cfg.Latency.Zero() {
		sampler = latencymodel.NewSampler(cfg.Latency, cfg.Seed)
	}
	r := &Region{
		Colossus:      colossus.NewRegion(cfg.Clusters...),
		DB:            spanner.NewDB(clock),
		Net:           rpc.NewNetwork(sampler),
		Clock:         clock,
		Keyring:       blockenc.NewKeyring(),
		Slicer:        slicer.New(nil),
		StreamServers: make(map[string]*streamserver.Server),
	}
	if sampler != nil {
		r.Colossus.SetSampler(sampler)
	}
	r.placer = newPlacer(cfg.Clusters)
	r.router = &router{slicer: r.Slicer}
	r.BigMeta = bigmeta.NewIndex()

	for i := 0; i < cfg.SMSTasks; i++ {
		addr := fmt.Sprintf("sms-%d", i)
		task := sms.New(addr, r.DB, r.Net, r.placer)
		task.SetColossus(r.Colossus)
		task.SetFragmentListener(r.BigMeta)
		task.SetFileGCListener(r)
		if !cfg.Quotas.Unlimited() {
			task.SetQuotas(cfg.Quotas)
		}
		r.SMSTasks = append(r.SMSTasks, task)
		r.Slicer.AddTask(addr)
	}
	for _, cl := range cfg.Clusters {
		for i := 0; i < cfg.StreamServersPerCluster; i++ {
			addr := fmt.Sprintf("ss-%s-%d", cl, i)
			sscfg := streamserver.DefaultConfig(addr)
			if cfg.MaxFragmentBytes > 0 {
				sscfg.MaxFragmentBytes = cfg.MaxFragmentBytes
			}
			sscfg.HeartbeatCoalesce = cfg.HeartbeatCoalesce
			sscfg.HeartbeatMaxStreamlets = cfg.HeartbeatMaxStreamlets
			srv := streamserver.New(sscfg, r.Colossus, clock, r.Keyring, r.router, r.Net)
			srv.SetFileDeleteObserver(r.FragmentFilesDeleted)
			r.StreamServers[addr] = srv
			r.placer.addServer(addr, cl)
		}
	}
	r.cfg = cfg
	// The read-session service runs as its own task with an internal
	// scan client: a cached leaf-scan substrate shared by every session
	// (the Storage Read API's server-side Dremel shards, in miniature).
	rsOpts := client.DefaultOptions()
	rsOpts.ReadCacheBytes = 32 << 20
	r.ReadSessions = readsession.NewServer(readsession.DefaultAddr, r.NewClient(rsOpts), r.BigMeta, clock)
	if cfg.Chaos != nil {
		r.installChaos(cfg.Chaos)
	}
	return r
}

// installChaos threads one schedule through every failure surface and
// gives it crash authority over individual tasks.
func (r *Region) installChaos(s *chaos.Schedule) {
	r.chaos = s
	r.Net.SetChaos(s)
	r.Colossus.SetChaos(s)
	for _, srv := range r.StreamServers {
		srv.SetChaos(s)
	}
	r.placer.setChaos(s)
	s.OnCrash(chaos.KindStreamServer, r.CrashStreamServer)
	s.OnCrash(chaos.KindSMS, r.CrashSMSTask)
}

// Chaos returns the region's fault-injection schedule (nil when none).
func (r *Region) Chaos() *chaos.Schedule { return r.chaos }

// NewClient returns a client bound to this region. A client opened with
// a read cache is automatically registered for GC invalidation.
func (r *Region) NewClient(opts client.Options) *client.Client {
	c := client.New(r.Net, r.router, r.Colossus, r.Keyring, r.Clock, opts)
	if rc := c.ReadCache(); rc != nil {
		r.RegisterReadCache(rc)
	}
	return c
}

// RegisterReadCache subscribes a client read cache to the region's
// fragment file-deletion events (SMS groomer and heartbeat-driven
// Stream Server GC).
func (r *Region) RegisterReadCache(rc *client.ReadCache) {
	if rc == nil {
		return
	}
	r.mu.Lock()
	r.readCaches = append(r.readCaches, rc)
	r.mu.Unlock()
}

// FragmentFilesDeleted implements sms.FileGCListener (and receives the
// Stream Servers' GC callbacks): fragment files are physically gone, so
// no registered cache may serve their bytes again.
func (r *Region) FragmentFilesDeleted(paths []string) {
	r.mu.Lock()
	caches := append([]*client.ReadCache(nil), r.readCaches...)
	r.mu.Unlock()
	for _, rc := range caches {
		rc.Invalidate(paths...)
	}
}

// Router exposes the table→SMS routing (used by tools and the optimizer).
func (r *Region) Router() client.Router { return r.router }

// HeartbeatAll drives one heartbeat round on every live Stream Server —
// the simulation's stand-in for the paper's periodic heartbeats (§5.5).
// Servers are visited in address order so that heartbeat side effects
// (placement load reports, fragment GC) happen in a replayable order.
func (r *Region) HeartbeatAll(ctx context.Context, full bool) {
	for _, addr := range r.ServerAddrs() {
		r.mu.Lock()
		s := r.StreamServers[addr]
		r.mu.Unlock()
		if s != nil {
			_ = s.HeartbeatNow(ctx, full)
		}
	}
}

// ServerAddrs returns all Stream Server addresses in sorted order.
func (r *Region) ServerAddrs() []string {
	r.mu.Lock()
	addrs := make([]string, 0, len(r.StreamServers))
	for a := range r.StreamServers {
		addrs = append(addrs, a)
	}
	r.mu.Unlock()
	sort.Strings(addrs)
	return addrs
}

// SMSAddrs returns all SMS task addresses in sorted order.
func (r *Region) SMSAddrs() []string {
	addrs := make([]string, 0, len(r.SMSTasks))
	for _, t := range r.SMSTasks {
		addrs = append(addrs, t.Addr())
	}
	sort.Strings(addrs)
	return addrs
}

// CrashStreamServer simulates a hard Stream Server crash.
func (r *Region) CrashStreamServer(addr string) {
	r.mu.Lock()
	srv := r.StreamServers[addr]
	r.mu.Unlock()
	if srv != nil {
		srv.Crash()
		r.placer.markDead(addr)
	}
}

// RestartStreamServer brings a crashed Stream Server back at the same
// address as a fresh task: empty streamlet map, same durable fragments
// in Colossus. Ownership of its old streamlets is re-established only
// through the usual SMS instruct path — exactly a Borg reschedule.
func (r *Region) RestartStreamServer(addr string) *streamserver.Server {
	sscfg := streamserver.DefaultConfig(addr)
	if r.cfg.MaxFragmentBytes > 0 {
		sscfg.MaxFragmentBytes = r.cfg.MaxFragmentBytes
	}
	sscfg.HeartbeatCoalesce = r.cfg.HeartbeatCoalesce
	sscfg.HeartbeatMaxStreamlets = r.cfg.HeartbeatMaxStreamlets
	srv := streamserver.New(sscfg, r.Colossus, r.Clock, r.Keyring, r.router, r.Net)
	srv.SetFileDeleteObserver(r.FragmentFilesDeleted)
	if r.chaos != nil {
		srv.SetChaos(r.chaos)
	}
	r.mu.Lock()
	r.StreamServers[addr] = srv
	r.mu.Unlock()
	r.placer.markAlive(addr)
	return srv
}

// CrashSMSTask simulates losing an SMS task: its handlers leave the
// network, in-flight calls to it fail, and its durable state stays in
// Spanner (§5.2 — control-plane tasks hold no unrecoverable state).
func (r *Region) CrashSMSTask(addr string) {
	r.Net.Deregister(addr)
}

// RestartSMSTask resumes a crashed SMS task at the same address.
func (r *Region) RestartSMSTask(addr string) {
	for _, t := range r.SMSTasks {
		if t.Addr() == addr {
			t.Register()
			return
		}
	}
}

// SetQuotas installs admission-control quotas on every SMS task.
func (r *Region) SetQuotas(q sms.Quotas) {
	for _, t := range r.SMSTasks {
		t.SetQuotas(q)
	}
}

// IngestStats aggregates the region's overload-protection counters:
// admission decisions across SMS tasks and shed/heartbeat counters
// across Stream Servers.
type IngestStats struct {
	Admission sms.AdmissionStats
	// ShedAppends counts data-plane appends rejected under a shed
	// instruction, summed over servers.
	ShedAppends int64
	// HeartbeatsSent / HeartbeatsCoalesced sum the servers' heartbeat
	// round counters.
	HeartbeatsSent      int64
	HeartbeatsCoalesced int64
	// RebalancedKeys counts Slicer keys moved by load rebalancing, and
	// OpenStaleWindows the double-assignment windows currently open.
	RebalancedKeys   int64
	OpenStaleWindows int
}

// IngestStats snapshots the region's overload-protection counters.
func (r *Region) IngestStats() IngestStats {
	var out IngestStats
	for _, t := range r.SMSTasks {
		s := t.AdmissionStats()
		out.Admission.StreamletsAdmitted += s.StreamletsAdmitted
		out.Admission.StreamletsShed += s.StreamletsShed
		out.Admission.BytesDebited += s.BytesDebited
		out.Admission.TableSheds += s.TableSheds
	}
	r.mu.Lock()
	servers := make([]*streamserver.Server, 0, len(r.StreamServers))
	for _, srv := range r.StreamServers {
		servers = append(servers, srv)
	}
	rebalanced := r.rebalancedKeys
	r.mu.Unlock()
	for _, srv := range servers {
		st := srv.Stats()
		out.ShedAppends += st.ShedAppends
		out.HeartbeatsSent += st.HeartbeatsSent
		out.HeartbeatsCoalesced += st.HeartbeatsCoalesced
	}
	out.RebalancedKeys = rebalanced
	out.OpenStaleWindows = len(r.Slicer.StaleOwners())
	return out
}

// RebalanceSMS runs one load-driven Slicer rebalance round, moving at
// most maxMoves hot table keys between SMS tasks and leaving each moved
// key's previous owner in the deliberate double-assignment window until
// SettleSlicer. Returns the moved keys.
func (r *Region) RebalanceSMS(maxMoves int) []string {
	moved := r.Slicer.RebalanceByLoad(maxMoves)
	r.mu.Lock()
	r.rebalancedKeys += int64(len(moved))
	r.mu.Unlock()
	return moved
}

// SettleSlicer closes every open Slicer reassignment window (the moment
// the stale task observes the new assignment).
func (r *Region) SettleSlicer() {
	r.Slicer.SettleAll()
}

// RunHeartbeats starts a background heartbeat loop until ctx ends.
func (r *Region) RunHeartbeats(ctx context.Context, every time.Duration) {
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		n := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				n++
				r.HeartbeatAll(ctx, n%10 == 0) // periodic full snapshot (§5.4.3)
			}
		}
	}()
}

// router implements client.Router / streamserver.Router via Slicer.
type router struct {
	slicer *slicer.Slicer
}

// SMSFor returns the SMS task responsible for the table. Every lookup
// counts as one unit of observed key load — the signal Slicer's
// load-driven rebalancing moves hot tables by (§5.2.1).
func (rt *router) SMSFor(table meta.TableID) (string, error) {
	key := "table:" + string(table)
	addr, err := rt.slicer.Lookup(key)
	if err == nil {
		rt.slicer.RecordKeyLoad(key, 1)
	}
	return addr, err
}

// placer implements sms.Placer: least-loaded healthy server wins, and
// the replica pair is the server's home cluster plus the next cluster in
// the region (§5.2, §5.6).
type placer struct {
	mu       sync.Mutex
	clusters []string
	servers  map[string]*serverState
	chaos    *chaos.Schedule
}

type serverState struct {
	cluster    string
	load       float64
	quarantine bool
	dead       bool
	placements int
}

func newPlacer(clusters []string) *placer {
	return &placer{clusters: clusters, servers: make(map[string]*serverState)}
}

func (p *placer) addServer(addr, cluster string) {
	p.mu.Lock()
	p.servers[addr] = &serverState{cluster: cluster}
	p.mu.Unlock()
}

func (p *placer) markDead(addr string) {
	p.mu.Lock()
	if s, ok := p.servers[addr]; ok {
		s.dead = true
	}
	p.mu.Unlock()
}

func (p *placer) markAlive(addr string) {
	p.mu.Lock()
	if s, ok := p.servers[addr]; ok {
		s.dead = false
	}
	p.mu.Unlock()
}

func (p *placer) setChaos(s *chaos.Schedule) {
	p.mu.Lock()
	p.chaos = s
	p.mu.Unlock()
}

// Pick implements sms.Placer.
func (p *placer) Pick(exclude string) (string, [2]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	type cand struct {
		addr string
		cost float64
	}
	var cands, outCands []cand
	for addr, st := range p.servers {
		if st.dead || st.quarantine || addr == exclude {
			continue
		}
		// Load plus a placement-count term keeps assignment spread even
		// before the first heartbeats arrive.
		c := cand{addr, st.load + float64(st.placements)*0.01}
		// Servers whose home cluster is in a scheduled outage are a last
		// resort: every write of theirs would start degraded.
		if p.chaos != nil && p.chaos.ClusterOut(st.cluster) {
			outCands = append(outCands, c)
			continue
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		cands = outCands
	}
	if len(cands) == 0 {
		return "", [2]string{}, errors.New("core: no healthy stream server available")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].addr < cands[j].addr
	})
	chosen := cands[0].addr
	st := p.servers[chosen]
	st.placements++
	home := st.cluster
	second := home
	for i, c := range p.clusters {
		if c == home {
			second = p.clusters[(i+1)%len(p.clusters)]
			// Skip partner clusters that are scheduled out: the streamlet
			// starts single-homed rather than failing its first write.
			for j := 2; p.chaos != nil && p.chaos.ClusterOut(second) && second != home && j <= len(p.clusters); j++ {
				second = p.clusters[(i+j)%len(p.clusters)]
			}
			break
		}
	}
	return chosen, [2]string{home, second}, nil
}

// ReportLoad implements sms.Placer.
func (p *placer) ReportLoad(addr string, cpu, mem, throughput float64, quarantine bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.servers[addr]
	if !ok {
		return
	}
	st.load = cpu + mem
	st.quarantine = quarantine
}
