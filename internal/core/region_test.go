package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vortex/internal/blockenc"
	"vortex/internal/client"
	"vortex/internal/meta"
	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/truetime"
	"vortex/internal/wire"
)

func eventsSchema() *schema.Schema {
	return &schema.Schema{
		Fields: []*schema.Field{
			{Name: "ts", Kind: schema.KindTimestamp, Mode: schema.Required},
			{Name: "device", Kind: schema.KindString, Mode: schema.Required},
			{Name: "value", Kind: schema.KindInt64, Mode: schema.Nullable},
		},
		PartitionField: "ts",
		ClusterBy:      []string{"device"},
	}
}

func eventRow(i int) schema.Row {
	return schema.NewRow(
		schema.Timestamp(time.Date(2024, 6, 1, 0, 0, i, 0, time.UTC)),
		schema.String(fmt.Sprintf("device-%d", i%5)),
		schema.Int64(int64(i)),
	)
}

func setup(t testing.TB) (*Region, *client.Client, context.Context) {
	t.Helper()
	r := NewRegion(DefaultConfig())
	c := r.NewClient(client.DefaultOptions())
	return r, c, context.Background()
}

func mustCreateTable(t testing.TB, ctx context.Context, c *client.Client, table meta.TableID) {
	t.Helper()
	if err := c.CreateTable(ctx, table, eventsSchema()); err != nil {
		t.Fatal(err)
	}
}

func readValues(t testing.TB, ctx context.Context, c *client.Client, table meta.TableID, ts truetime.Timestamp) []int64 {
	t.Helper()
	rows, _, err := c.ReadAll(ctx, table, ts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.Row.Values[2].AsInt64()
	}
	return out
}

func TestUnbufferedReadAfterWrite(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.events")
	s, err := c.CreateStream(ctx, "d.events", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		rows := []schema.Row{eventRow(batch * 2), eventRow(batch*2 + 1)}
		off, err := s.Append(ctx, rows, client.AtOffset(-1))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(batch*2) {
			t.Fatalf("batch %d landed at %d", batch, off)
		}
	}
	// Read-after-write WITHOUT any heartbeat: the SMS has never heard of
	// these fragments; the reader must discover the streamlet tail and
	// apply the commit rule (§7.1).
	got := readValues(t, ctx, c, "d.events", 0)
	if len(got) != 6 {
		t.Fatalf("read %d rows, want 6: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d (order lost)", i, v)
		}
	}
}

func TestOffsetValidationGivesExactlyOnce(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.t")
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	rows := []schema.Row{eventRow(0), eventRow(1)}
	if _, err := s.Append(ctx, rows, client.AtOffset(0)); err != nil {
		t.Fatal(err)
	}
	// A retry of the same batch at the same offset must fail…
	if _, err := s.Append(ctx, rows, client.AtOffset(0)); !errors.Is(err, client.ErrWrongOffset) {
		t.Fatalf("duplicate append err = %v, want ErrWrongOffset", err)
	}
	// …and appending at the next offset succeeds.
	if _, err := s.Append(ctx, []schema.Row{eventRow(2)}, client.AtOffset(2)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order offsets are rejected too.
	if _, err := s.Append(ctx, []schema.Row{eventRow(9)}, client.AtOffset(7)); !errors.Is(err, client.ErrWrongOffset) {
		t.Fatalf("gap append err = %v", err)
	}
	if got := readValues(t, ctx, c, "d.t", 0); len(got) != 3 {
		t.Fatalf("read %d rows, want 3 (duplicates leaked?): %v", len(got), got)
	}
}

func TestBufferedFlushVisibility(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.buf")
	s, err := c.CreateStream(ctx, "d.buf", meta.Buffered)
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for i := 0; i < 10; i++ {
		rows = append(rows, eventRow(i))
	}
	if _, err := s.Append(ctx, rows, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// Unflushed rows are durable but invisible (§4.2.1).
	if got := readValues(t, ctx, c, "d.buf", 0); len(got) != 0 {
		t.Fatalf("unflushed rows visible: %v", got)
	}
	// Flush half.
	if err := s.Flush(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if got := readValues(t, ctx, c, "d.buf", 0); len(got) != 5 {
		t.Fatalf("after flush(5): %d rows visible, want 5", len(got))
	}
	// Idempotent, and never regresses.
	if err := s.Flush(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if got := readValues(t, ctx, c, "d.buf", 0); len(got) != 5 {
		t.Fatalf("frontier regressed: %d rows", len(got))
	}
	// Flushing beyond the stream length fails (§4.2.3).
	if err := s.Flush(ctx, 11); err == nil {
		t.Fatal("flush past end accepted")
	}
	// Flush the rest.
	if err := s.Flush(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if got := readValues(t, ctx, c, "d.buf", 0); len(got) != 10 {
		t.Fatalf("after full flush: %d rows", len(got))
	}
}

func TestPendingBatchCommitAtomicity(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.batch")
	// Two parallel workers, one PENDING stream each (§4.2.4).
	var streams []*client.Stream
	var ids []meta.StreamID
	for w := 0; w < 2; w++ {
		s, err := c.CreateStream(ctx, "d.batch", meta.Pending)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := s.Append(ctx, []schema.Row{eventRow(w*10 + i)}, client.AtOffset(-1)); err != nil {
				t.Fatal(err)
			}
		}
		streams = append(streams, s)
		ids = append(ids, s.Info().ID)
	}
	if got := readValues(t, ctx, c, "d.batch", 0); len(got) != 0 {
		t.Fatalf("uncommitted PENDING rows visible: %v", got)
	}
	// Commit requires finalization.
	if _, err := c.BatchCommit(ctx, "d.batch", ids); err == nil {
		t.Fatal("batch commit of unfinalized streams accepted")
	}
	for _, s := range streams {
		n, err := s.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("finalized row count = %d, want 3", n)
		}
	}
	before := readValues(t, ctx, c, "d.batch", 0)
	if len(before) != 0 {
		t.Fatal("finalized-but-uncommitted rows visible")
	}
	commitTS, err := c.BatchCommit(ctx, "d.batch", ids)
	if err != nil {
		t.Fatal(err)
	}
	if got := readValues(t, ctx, c, "d.batch", 0); len(got) != 6 {
		t.Fatalf("after commit: %d rows, want 6", len(got))
	}
	// A snapshot before the commit still sees nothing (time travel).
	if got := readValues(t, ctx, c, "d.batch", commitTS-1); len(got) != 0 {
		t.Fatalf("pre-commit snapshot sees %d rows", len(got))
	}
	// Idempotent re-commit.
	if _, err := c.BatchCommit(ctx, "d.batch", ids); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeStreamStopsAppends(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.fin")
	s, err := c.CreateStream(ctx, "d.fin", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(1)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	n, err := s.Finalize(ctx)
	if err != nil || n != 1 {
		t.Fatalf("finalize: %d, %v", n, err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(2)}, client.AtOffset(-1)); !errors.Is(err, client.ErrStreamFinalized) {
		t.Fatalf("append after finalize: %v", err)
	}
	// A second stream object appending to the finalized stream is also
	// rejected at the SMS.
	if got := readValues(t, ctx, c, "d.fin", 0); len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
}

func TestSnapshotReadsAreStable(t *testing.T) {
	r, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.snap")
	s, err := c.CreateStream(ctx, "d.snap", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(0)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// TrueTime cannot order events closer together than its uncertainty:
	// separate the snapshot and the second append by > 2ε.
	snap := r.Clock.Now().Latest
	time.Sleep(12 * time.Millisecond)
	if _, err := s.Append(ctx, []schema.Row{eventRow(1)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	if got := readValues(t, ctx, c, "d.snap", snap); len(got) != 1 || got[0] != 0 {
		t.Fatalf("snapshot read = %v, want [0]", got)
	}
	if got := readValues(t, ctx, c, "d.snap", 0); len(got) != 2 {
		t.Fatalf("current read = %v", got)
	}
}

func TestStreamServerCrashRotatesStreamlet(t *testing.T) {
	r, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.crash")
	s, err := c.CreateStream(ctx, "d.crash", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(0), eventRow(1)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// Find and crash the server hosting the streamlet.
	server := findStreamServer(t, r, "d.crash")
	r.CrashStreamServer(server)

	// The next append transparently rotates to a new streamlet on a
	// different server (§5.4, §5.3).
	if _, err := s.Append(ctx, []schema.Row{eventRow(2)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	got := readValues(t, ctx, c, "d.crash", 0)
	if len(got) != 3 {
		t.Fatalf("after crash rotation: rows = %v, want [0 1 2]", got)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
	// Offset continuity across streamlets: the stream is 3 rows long.
	if off, err := s.Append(ctx, []schema.Row{eventRow(3)}, client.AtOffset(3)); err != nil || off != 3 {
		t.Fatalf("offset continuity: off=%d err=%v", off, err)
	}
}

// findStreamServer locates the server that has received the table's
// appends (tests use one active table per region).
func findStreamServer(t *testing.T, r *Region, table meta.TableID) string {
	t.Helper()
	var best string
	var bestOps int64
	for addr, srv := range r.StreamServers {
		if st := srv.Stats(); st.AppendOps > bestOps {
			best, bestOps = addr, st.AppendOps
		}
	}
	if best == "" {
		t.Fatal("no stream server has received appends")
	}
	return best
}

func TestColossusWriteFailureRotatesFragment(t *testing.T) {
	r, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.iofail")
	s, err := c.CreateStream(ctx, "d.iofail", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(0)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// Inject a transient write failure on one cluster: the server must
	// close the fragment and retry into a new one (§5.3).
	r.Colossus.Cluster("alpha").FailNextWrites(1)
	if _, err := s.Append(ctx, []schema.Row{eventRow(1)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(2)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	got := readValues(t, ctx, c, "d.iofail", 0)
	if len(got) != 3 {
		t.Fatalf("rows after fragment rotation = %v", got)
	}
}

func TestZombieWriterIsPoisoned(t *testing.T) {
	r, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.zombie")
	s, err := c.CreateStream(ctx, "d.zombie", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(0)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	zombieServer := findStreamServer(t, r, "d.zombie")
	// Partition the server: clients cannot reach it, but it still runs
	// (the zombie scenario of §5.6).
	r.Net.SetPartitioned(zombieServer, true)
	// The client's next append fails over to a new streamlet; the SMS
	// reconciliation poisons the old log files with a sentinel.
	if _, err := s.Append(ctx, []schema.Row{eventRow(1)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// Heal the partition. The zombie tries to keep writing to its old
	// streamlet: the conditional append hits the sentinel and the server
	// relinquishes ownership.
	r.Net.SetPartitioned(zombieServer, false)
	errCode := zombieAppend(t, r, zombieServer, s)
	if errCode == "" {
		t.Fatal("zombie append unexpectedly succeeded")
	}
	got := readValues(t, ctx, c, "d.zombie", 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("rows after zombie poisoning = %v, want [0 1]", got)
	}
}

// zombieAppend sends an append directly to a specific server for the
// stream's FIRST streamlet (the one it lost), returning the error code
// ("" on success).
func zombieAppend(t *testing.T, r *Region, server string, s *client.Stream) string {
	t.Helper()
	payload := rowenc.EncodeRows([]schema.Row{eventRow(99)})
	slID := meta.StreamletIDFor(s.Info().ID, 0)
	resp, err := r.Net.Unary(context.Background(), server, wire.MethodAppend, &wire.AppendRequest{
		Streamlet:            slID,
		Payload:              payload,
		CRC:                  blockenc.Checksum(payload),
		ExpectedStreamOffset: -1,
	})
	if err != nil {
		return err.Error()
	}
	return resp.(*wire.AppendResponse).Error
}

func TestConcurrentWritersOwnStreams(t *testing.T) {
	_, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.many")
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.CreateStream(ctx, "d.many", meta.Unbuffered)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < perWriter; i++ {
				if _, err := s.Append(ctx, []schema.Row{eventRow(w*perWriter + i)}, client.AtOffset(int64(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	got := readValues(t, ctx, c, "d.many", 0)
	if len(got) != writers*perWriter {
		t.Fatalf("read %d rows, want %d", len(got), writers*perWriter)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate row %d", v)
		}
		seen[v] = true
	}
}

func TestSchemaEvolutionMidStream(t *testing.T) {
	r, c, ctx := setup(t)
	mustCreateTable(t, ctx, c, "d.evolve")
	s, err := c.CreateStream(ctx, "d.evolve", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{eventRow(0)}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	// Another principal evolves the schema.
	admin := r.NewClient(client.DefaultOptions())
	if _, err := admin.UpdateSchema(ctx, "d.evolve", &schema.Field{Name: "tag", Kind: schema.KindString, Mode: schema.Nullable}); err != nil {
		t.Fatal(err)
	}
	// The Stream Server learns the new schema via heartbeat (§5.4.1).
	r.HeartbeatAll(ctx, false)
	// A writer that already knows the new schema can use the new field.
	sc, err := c.GetSchema(ctx, "d.evolve")
	if err != nil {
		t.Fatal(err)
	}
	newRow := schema.NewRow(
		schema.Timestamp(time.Date(2024, 6, 1, 0, 0, 9, 0, time.UTC)),
		schema.String("device-9"),
		schema.Int64(9),
		schema.String("tagged"),
	)
	if err := sc.ValidateRow(newRow); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, []schema.Row{newRow}, client.AtOffset(-1)); err != nil {
		t.Fatal(err)
	}
	rows, _, err := c.ReadAll(ctx, "d.evolve", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// The old row reads the added column as NULL.
	old := rows[0].Row
	if len(old.Values) >= 4 && !old.Values[3].IsNull() {
		t.Fatalf("old row's added field = %v, want NULL", old.Values[3])
	}
	if rows[1].Row.Values[3].AsString() != "tagged" {
		t.Fatalf("new row's field = %v", rows[1].Row.Values[3])
	}
}

func TestHeartbeatPromotesFragmentsAndReadStaysExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFragmentBytes = 1024 // force frequent fragment rotation
	r := NewRegion(cfg)
	c := r.NewClient(client.DefaultOptions())
	ctx := context.Background()
	mustCreateTable(t, ctx, c, "d.hb")
	s, err := c.CreateStream(ctx, "d.hb", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := s.Append(ctx, []schema.Row{eventRow(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Before heartbeat: everything is tail. After: fragments known to
	// the SMS. Reads must return exactly the same rows either way.
	before := readValues(t, ctx, c, "d.hb", 0)
	r.HeartbeatAll(ctx, false)
	after := readValues(t, ctx, c, "d.hb", 0)
	if len(before) != n || len(after) != n {
		t.Fatalf("before=%d after=%d, want %d", len(before), len(after), n)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d changed across heartbeat: %d vs %d", i, before[i], after[i])
		}
	}
}
