package core

import (
	"strings"
	"testing"
	"time"

	"vortex/internal/chaos"
	"vortex/internal/client"
	"vortex/internal/meta"
	"vortex/internal/schema"
	"vortex/internal/verify"
)

// TestSMSTaskLossResumesAfterRestart kills the SMS task serving the
// table mid-workload. The control plane is stateless over Spanner
// (§5.2): once the task is re-registered, retried client calls resume
// against the same durable state and no acknowledged row is lost.
func TestSMSTaskLossResumesAfterRestart(t *testing.T) {
	sched := chaos.NewSchedule(11)
	cfg := DefaultConfig()
	cfg.Chaos = sched
	r := NewRegion(cfg)
	c := r.NewClient(client.DefaultOptions())
	ctx := t.Context()
	mustCreateTable(t, ctx, c, "d.t")

	// Target the task that actually serves this table.
	smsAddr, err := r.Router().SMSFor("d.t")
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.CreateStream(ctx, "d.t", meta.Unbuffered)
	if err != nil {
		t.Fatal(err)
	}
	ledger := verify.NewLedger()
	ts := verify.Track(s, ledger)
	for i := 0; i < 4; i++ {
		if _, err := ts.Append(ctx, []schema.Row{eventRow(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	// Kill the SMS task on its next RPC; bring it back shortly after,
	// while the client is still inside its backoff loop. Crashing the
	// owning Stream Server at the same time forces the next append to
	// rotate — reconcile + GetWritableStreamlet against the dying task.
	sched.CrashSMSTaskAt(smsAddr, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		r.RestartSMSTask(smsAddr)
	}()
	r.CrashStreamServer(findStreamServer(t, r, "d.t"))
	for i := 4; i < 8; i++ {
		if _, err := ts.Append(ctx, []schema.Row{eventRow(i)}, client.AtOffset(int64(i))); err != nil {
			t.Fatalf("append %d after restart: %v", i, err)
		}
	}

	report, err := verify.VerifyTable(ctx, c, "d.t", ledger, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("SMS loss broke exactly-once:\n%v", report)
	}
	if c.Metrics().SMSRetries == 0 {
		t.Fatal("no SMS retries recorded; the crash should have forced one")
	}
	if !strings.Contains(sched.LogString(), "crash") {
		t.Fatalf("no crash event logged:\n%s", sched.LogString())
	}
}
