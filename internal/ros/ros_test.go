package ros

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vortex/internal/schema"
)

// dremelSchema is the Document schema from the Dremel paper, the
// canonical test vector for repetition/definition levels.
func dremelSchema() *schema.Schema {
	return &schema.Schema{Fields: []*schema.Field{
		{Name: "DocId", Kind: schema.KindInt64, Mode: schema.Required},
		{Name: "Links", Kind: schema.KindStruct, Mode: schema.Nullable, Fields: []*schema.Field{
			{Name: "Backward", Kind: schema.KindInt64, Mode: schema.Repeated},
			{Name: "Forward", Kind: schema.KindInt64, Mode: schema.Repeated},
		}},
		{Name: "Name", Kind: schema.KindStruct, Mode: schema.Repeated, Fields: []*schema.Field{
			{Name: "Language", Kind: schema.KindStruct, Mode: schema.Repeated, Fields: []*schema.Field{
				{Name: "Code", Kind: schema.KindString, Mode: schema.Required},
				{Name: "Country", Kind: schema.KindString, Mode: schema.Nullable},
			}},
			{Name: "Url", Kind: schema.KindString, Mode: schema.Nullable},
		}},
	}}
}

func dremelRows() []schema.Row {
	r1 := schema.NewRow(
		schema.Int64(10),
		schema.Struct(
			schema.List(),
			schema.List(schema.Int64(20), schema.Int64(40), schema.Int64(60)),
		),
		schema.List(
			schema.Struct(
				schema.List(
					schema.Struct(schema.String("en-us"), schema.String("us")),
					schema.Struct(schema.String("en"), schema.Null()),
				),
				schema.String("http://A"),
			),
			schema.Struct(schema.List(), schema.String("http://B")),
			schema.Struct(
				schema.List(schema.Struct(schema.String("en-gb"), schema.String("gb"))),
				schema.Null(),
			),
		),
	)
	r2 := schema.NewRow(
		schema.Int64(20),
		schema.Struct(
			schema.List(schema.Int64(10), schema.Int64(30)),
			schema.List(schema.Int64(80)),
		),
		schema.List(
			schema.Struct(schema.List(), schema.String("http://C")),
		),
	)
	return []schema.Row{r1, r2}
}

type levelTriple struct {
	rep, def int
	val      string // "" for NULL
}

func TestDremelPaperLevels(t *testing.T) {
	s := dremelSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := newStriper(s)
	for _, r := range dremelRows() {
		if err := s.ValidateRow(r); err != nil {
			t.Fatal(err)
		}
		st.addRow(r)
	}
	want := map[string][]levelTriple{
		"DocId":          {{0, 0, "10"}, {0, 0, "20"}},
		"Links.Backward": {{0, 1, ""}, {0, 2, "10"}, {1, 2, "30"}},
		"Links.Forward":  {{0, 2, "20"}, {1, 2, "40"}, {1, 2, "60"}, {0, 2, "80"}},
		"Name.Language.Code": {
			{0, 2, `"en-us"`}, {2, 2, `"en"`}, {1, 1, ""}, {1, 2, `"en-gb"`}, {0, 1, ""},
		},
		"Name.Language.Country": {
			{0, 3, `"us"`}, {2, 2, ""}, {1, 1, ""}, {1, 3, `"gb"`}, {0, 1, ""},
		},
		"Name.Url": {{0, 2, `"http://A"`}, {1, 2, `"http://B"`}, {1, 1, ""}, {0, 2, `"http://C"`}},
	}
	for path, triples := range want {
		c := st.byPath[path]
		if c == nil {
			t.Fatalf("no column %q", path)
		}
		if len(c.reps) != len(triples) {
			t.Fatalf("%s: %d entries, want %d (reps=%v defs=%v)", path, len(c.reps), len(triples), c.reps, c.defs)
		}
		vi := 0
		for i, tr := range triples {
			if int(c.reps[i]) != tr.rep || int(c.defs[i]) != tr.def {
				t.Errorf("%s[%d]: (r%d,d%d), want (r%d,d%d)", path, i, c.reps[i], c.defs[i], tr.rep, tr.def)
			}
			if int(c.defs[i]) == c.leaf.MaxDef {
				got := c.values[vi].String()
				if got != tr.val {
					t.Errorf("%s[%d]: value %s, want %s", path, i, got, tr.val)
				}
				vi++
			} else if tr.val != "" {
				t.Errorf("%s[%d]: expected value %s but entry is null", path, i, tr.val)
			}
		}
	}
}

func rowsEqual(a, b schema.Row) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return false
		}
	}
	return true
}

func TestFileRoundTripDremel(t *testing.T) {
	s := dremelSchema()
	w := NewWriter(s)
	rows := dremelRows()
	for i, r := range rows {
		if err := w.Add(r, int64(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.RowCount() != 2 {
		t.Fatalf("rows = %d", rd.RowCount())
	}
	got, err := rd.Rows(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if !rowsEqual(got[i].Row, rows[i]) {
			t.Fatalf("row %d:\n got %v\nwant %v", i, got[i].Row.Values, rows[i].Values)
		}
		if got[i].Seq != int64(i+100) {
			t.Fatalf("row %d seq = %d", i, got[i].Seq)
		}
	}
}

func salesSchema() *schema.Schema {
	return &schema.Schema{
		Fields: []*schema.Field{
			{Name: "orderTimestamp", Kind: schema.KindTimestamp, Mode: schema.Required},
			{Name: "salesOrderKey", Kind: schema.KindString, Mode: schema.Required},
			{Name: "customerKey", Kind: schema.KindString, Mode: schema.Required},
			{Name: "salesOrderLines", Kind: schema.KindStruct, Mode: schema.Repeated, Fields: []*schema.Field{
				{Name: "salesOrderLineKey", Kind: schema.KindInt64, Mode: schema.Required},
				{Name: "dueDate", Kind: schema.KindDate, Mode: schema.Nullable},
				{Name: "quantity", Kind: schema.KindInt64, Mode: schema.Nullable},
				{Name: "unitPrice", Kind: schema.KindNumeric, Mode: schema.Nullable},
			}},
			{Name: "totalSale", Kind: schema.KindNumeric, Mode: schema.Nullable},
			{Name: "tags", Kind: schema.KindString, Mode: schema.Repeated},
		},
		PrimaryKey:     []string{"salesOrderKey"},
		PartitionField: "orderTimestamp",
		ClusterBy:      []string{"customerKey"},
	}
}

func TestFileRoundTripRandomRows(t *testing.T) {
	// Strip the partition annotation so random timestamps (multiple
	// dates) are allowed in one file.
	s := salesSchema()
	s.PartitionField = ""
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50) + 1
		w := NewWriter(s)
		rows := make([]schema.Row, n)
		for i := range rows {
			rows[i] = schema.RandomRow(rng, s)
			if err := w.Add(rows[i], int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Open(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Rows(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), n)
		}
		for i := range rows {
			if !rowsEqual(got[i].Row, rows[i]) {
				t.Fatalf("trial %d row %d mismatch:\n got %v\nwant %v", trial, i, got[i].Row.Values, rows[i].Values)
			}
		}
	}
}

func mkSalesRow(ts time.Time, order, customer string, total int64) schema.Row {
	return schema.NewRow(
		schema.Timestamp(ts),
		schema.String(order),
		schema.String(customer),
		schema.List(schema.Struct(schema.Int64(1), schema.Null(), schema.Int64(2), schema.Null())),
		schema.Numeric(total*schema.NumericScale),
		schema.List(schema.String("web")),
	)
}

func TestPartitionEnforcement(t *testing.T) {
	s := salesSchema()
	w := NewWriter(s)
	day1 := time.Date(2023, 10, 1, 10, 0, 0, 0, time.UTC)
	day2 := time.Date(2023, 10, 2, 10, 0, 0, 0, time.UTC)
	if err := w.Add(mkSalesRow(day1, "SO-1", "ACME", 5), 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(mkSalesRow(day2, "SO-2", "ACME", 5), 2); err == nil {
		t.Fatal("cross-partition row accepted; Figure 5 requires one partition per ROS file")
	}
	if err := w.Add(mkSalesRow(day1.Add(time.Hour), "SO-3", "Zeta", 5), 3); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := rd.Partition()
	if !ok || p != day1.Unix()/86400 {
		t.Fatalf("partition = %d, %v", p, ok)
	}
}

func TestClusterRangeBloomAndStats(t *testing.T) {
	s := salesSchema()
	w := NewWriter(s)
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	customers := []string{"Emma", "Allie", "Tom", "Ben", "David"}
	for i, c := range customers {
		if err := w.Add(mkSalesRow(day.Add(time.Duration(i)*time.Minute), fmt.Sprintf("SO-%d", i), c, int64(i)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	mn, mx := rd.ClusterRange()
	if mn[0].AsString() != "Allie" || mx[0].AsString() != "Tom" {
		t.Fatalf("cluster range = %v..%v", mn, mx)
	}
	for _, c := range customers {
		if !rd.Bloom().ContainsString(c) {
			t.Fatalf("bloom lost customer %q", c)
		}
	}
	// Column stats: customerKey min/max.
	col := rd.Column("customerKey")
	if col == nil {
		t.Fatal("customerKey column missing")
	}
	if !col.Stats.HasRange || col.Stats.Min.AsString() != "Allie" || col.Stats.Max.AsString() != "Tom" {
		t.Fatalf("customerKey stats = %+v", col.Stats)
	}
	if col.Stats.NullCount != 0 || col.Stats.Entries != 5 {
		t.Fatalf("stats = %+v", col.Stats)
	}
	// totalSale: INT stats via NUMERIC kind.
	ts := rd.Column("totalSale").Stats
	if ts.Min.AsNumericScaled() != 0 || ts.Max.AsNumericScaled() != 4*schema.NumericScale {
		t.Fatalf("totalSale stats = %v..%v", ts.Min, ts.Max)
	}
}

func TestDictionaryEncodingChosenForRepetitiveColumn(t *testing.T) {
	s := &schema.Schema{Fields: []*schema.Field{
		{Name: "region", Kind: schema.KindString, Mode: schema.Required},
		{Name: "id", Kind: schema.KindInt64, Mode: schema.Required},
	}}
	w := NewWriter(s)
	regions := []string{"us-west", "us-east", "eu-west"}
	for i := 0; i < 1000; i++ {
		if err := w.Add(schema.NewRow(schema.String(regions[i%3]), schema.Int64(int64(i))), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Column("region").Stats.Encoding != EncodingDict {
		t.Fatal("repetitive string column not dictionary-encoded")
	}
	if rd.Column("id").Stats.Encoding != EncodingPlain {
		t.Fatal("unique int column should be plain-encoded")
	}
	rows, err := rd.Rows(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Row.Values[0].AsString() != regions[i%3] {
			t.Fatalf("row %d region = %v", i, r.Row.Values[0])
		}
	}
}

func TestSchemaEvolutionReadsOldFile(t *testing.T) {
	old := salesSchema()
	w := NewWriter(old)
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	if err := w.Add(mkSalesRow(day, "SO-1", "ACME", 9), 1); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	evolved, err := old.AddField(&schema.Field{Name: "discountCode", Kind: schema.KindString, Mode: schema.Nullable})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rd.Rows(evolved)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Row.Values) != len(evolved.Fields) {
		t.Fatalf("arity = %d, want %d", len(rows[0].Row.Values), len(evolved.Fields))
	}
	if !rows[0].Row.Values[len(evolved.Fields)-1].IsNull() {
		t.Fatal("added field must read as NULL from old files")
	}
	if rows[0].Row.Values[1].AsString() != "SO-1" {
		t.Fatal("existing fields corrupted by evolution")
	}
}

func TestChangeTypesAndSeqsPreserved(t *testing.T) {
	s := salesSchema()
	w := NewWriter(s)
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	r1 := mkSalesRow(day, "SO-1", "A", 1).WithChange(schema.ChangeUpsert)
	r2 := mkSalesRow(day, "SO-1", "A", 2).WithChange(schema.ChangeDelete)
	if err := w.Add(r1, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(r2, 20); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.ChangeAt(0) != schema.ChangeUpsert || rd.ChangeAt(1) != schema.ChangeDelete {
		t.Fatal("change types lost")
	}
	if rd.SeqAt(0) != 10 || rd.SeqAt(1) != 20 {
		t.Fatal("seqs lost")
	}
	rows, err := rd.Rows(s)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Row.Change != schema.ChangeUpsert || rows[1].Row.Change != schema.ChangeDelete {
		t.Fatal("assembled rows lost change types")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	s := salesSchema()
	w := NewWriter(s)
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		w.Add(mkSalesRow(day, fmt.Sprintf("SO-%d", i), "A", int64(i)), int64(i))
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		bad := append([]byte(nil), data...)
		bad[rng.Intn(len(bad))] ^= 0x10
		if _, err := Open(bad); err == nil {
			t.Fatal("corrupted file opened cleanly (CRC must catch it)")
		}
	}
	for _, cut := range []int{0, 3, 12, len(data) / 2, len(data) - 1} {
		if _, err := Open(data[:cut]); err == nil {
			t.Fatalf("truncated file (%d bytes) opened cleanly", cut)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	s := salesSchema()
	w := NewWriter(s)
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.RowCount() != 0 {
		t.Fatalf("rows = %d", rd.RowCount())
	}
	rows, err := rd.Rows(s)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func BenchmarkWriteROS1000Rows(b *testing.B) {
	s := salesSchema()
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]schema.Row, 1000)
	for i := range rows {
		rows[i] = mkSalesRow(day.Add(time.Duration(i)*time.Second), fmt.Sprintf("SO-%d", i), fmt.Sprintf("C-%d", i%20), int64(i))
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		w := NewWriter(s)
		for i, r := range rows {
			if err := w.Add(r, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadROS1000Rows(b *testing.B) {
	s := salesSchema()
	day := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	w := NewWriter(s)
	for i := 0; i < 1000; i++ {
		w.Add(mkSalesRow(day.Add(time.Duration(i)*time.Second), fmt.Sprintf("SO-%d", i), fmt.Sprintf("C-%d", i%20), int64(i)), int64(i))
	}
	data, err := w.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		rd, err := Open(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rd.Rows(s); err != nil {
			b.Fatal(err)
		}
	}
}
