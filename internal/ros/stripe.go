// Package ros implements the read-optimized storage format (§5.1, §6.1)
// — the stand-in for Capacitor/Parquet. Rows are shredded into columns
// using Dremel repetition/definition levels (BigQuery's native model for
// nested and repeated data), encoded per column with PLAIN or dictionary
// encodings plus RLE'd levels, and stored with per-column statistics
// (min/max, null counts) and a clustering-key bloom filter that Big
// Metadata uses for partition elimination (§7.2).
package ros

import (
	"fmt"

	"vortex/internal/schema"
)

// columnData is the in-memory striped representation of one leaf column.
type columnData struct {
	leaf   schema.LeafColumn
	reps   []uint8
	defs   []uint8
	values []schema.Value // len == number of entries with def == MaxDef
}

// striper shreds rows into columnar (rep, def, value) triples.
type striper struct {
	schema *schema.Schema
	cols   []*columnData
	// index maps a field-path position to its column; built once.
	byPath map[string]*columnData
}

func newStriper(s *schema.Schema) *striper {
	leaves := s.Leaves()
	st := &striper{schema: s, byPath: make(map[string]*columnData, len(leaves))}
	for _, l := range leaves {
		c := &columnData{leaf: l}
		st.cols = append(st.cols, c)
		st.byPath[l.Path] = c
	}
	return st
}

// addRow stripes one row. The row must already be schema-valid.
func (st *striper) addRow(r schema.Row) {
	for i, f := range st.schema.Fields {
		var v schema.Value
		if i < len(r.Values) {
			v = r.Values[i]
		} else {
			v = schema.Null() // evolved-schema row: trailing fields read NULL
		}
		st.stripeField(f, f.Name, v, 0, 0, 0)
	}
}

// stripeField emits entries for field (and its subtree) given value v.
// rep is the repetition level for the first atom emitted; def is the
// definition level accumulated so far; repDepth is the repetition depth
// of the enclosing context.
func (st *striper) stripeField(f *schema.Field, path string, v schema.Value, rep, def, repDepth int) {
	switch f.Mode {
	case schema.Required:
		st.stripeContent(f, path, v, rep, def, repDepth)
	case schema.Nullable:
		if v.IsNull() {
			st.emitNullSubtree(f, path, rep, def)
			return
		}
		st.stripeContent(f, path, v, rep, def+1, repDepth)
	case schema.Repeated:
		if v.IsNull() || v.Len() == 0 {
			st.emitNullSubtree(f, path, rep, def)
			return
		}
		childRep := repDepth + 1
		for i := 0; i < v.Len(); i++ {
			r := rep
			if i > 0 {
				r = childRep
			}
			st.stripeContent(f, path, v.Index(i), r, def+1, childRep)
		}
	}
}

// stripeContent emits the content of a present (non-null) value.
func (st *striper) stripeContent(f *schema.Field, path string, v schema.Value, rep, def, repDepth int) {
	if f.Kind == schema.KindStruct {
		for j, sub := range f.Fields {
			var sv schema.Value
			if j < v.Len() {
				sv = v.FieldValue(j)
			} else {
				sv = schema.Null()
			}
			st.stripeField(sub, path+"."+sub.Name, sv, rep, def, repDepth)
		}
		return
	}
	c := st.byPath[path]
	c.reps = append(c.reps, uint8(rep))
	c.defs = append(c.defs, uint8(def))
	c.values = append(c.values, v)
}

// emitNullSubtree emits one (rep, def) entry — with no value — for every
// leaf under f, recording that the path is undefined from level def on.
func (st *striper) emitNullSubtree(f *schema.Field, path string, rep, def int) {
	if f.Kind == schema.KindStruct {
		for _, sub := range f.Fields {
			st.emitNullSubtree(sub, path+"."+sub.Name, rep, def)
		}
		return
	}
	c := st.byPath[path]
	c.reps = append(c.reps, uint8(rep))
	c.defs = append(c.defs, uint8(def))
}

// assembler reconstructs rows from striped columns.
type assembler struct {
	schema  *schema.Schema
	byPath  map[string]*columnCursor
	ordered []*columnCursor
}

type columnCursor struct {
	col *columnData
	pos int // entry index
	vi  int // value index (entries with def == MaxDef consumed so far)
}

// peekRep returns the repetition level of the cursor's current entry, or
// -1 when exhausted.
func (c *columnCursor) peekRep() int {
	if c.pos >= len(c.col.reps) {
		return -1
	}
	return int(c.col.reps[c.pos])
}

func (c *columnCursor) peekDef() int {
	return int(c.col.defs[c.pos])
}

// take consumes the current entry, returning (def, value or Null).
func (c *columnCursor) take() (int, schema.Value) {
	def := int(c.col.defs[c.pos])
	var v schema.Value
	if def == c.col.leaf.MaxDef {
		v = c.col.values[c.vi]
		c.vi++
	} else {
		v = schema.Null()
	}
	c.pos++
	return def, v
}

func newAssembler(s *schema.Schema, cols []*columnData) *assembler {
	a := &assembler{schema: s, byPath: make(map[string]*columnCursor, len(cols))}
	for _, c := range cols {
		cur := &columnCursor{col: c}
		a.byPath[c.leaf.Path] = cur
		a.ordered = append(a.ordered, cur)
	}
	return a
}

func (a *assembler) exhausted() bool {
	for _, c := range a.ordered {
		if c.pos < len(c.col.reps) {
			return false
		}
	}
	return true
}

// nextRow assembles the next row, or ok=false when all columns are done.
func (a *assembler) nextRow() (schema.Row, bool, error) {
	if a.exhausted() {
		return schema.Row{}, false, nil
	}
	values := make([]schema.Value, len(a.schema.Fields))
	for i, f := range a.schema.Fields {
		v, err := a.assembleField(f, f.Name, 0, 0)
		if err != nil {
			return schema.Row{}, false, err
		}
		values[i] = v
	}
	return schema.Row{Values: values}, true, nil
}

// firstLeaf returns the cursor of the first leaf under (f, path).
func (a *assembler) firstLeaf(f *schema.Field, path string) (*columnCursor, error) {
	if f.Kind != schema.KindStruct {
		c, ok := a.byPath[path]
		if !ok {
			return nil, fmt.Errorf("ros: missing column %q", path)
		}
		return c, nil
	}
	return a.firstLeaf(f.Fields[0], path+"."+f.Fields[0].Name)
}

// assembleField reconstructs the value of field f in the current record
// context. def is the definition level accumulated by present ancestors;
// repDepth is the repetition depth of the enclosing context.
func (a *assembler) assembleField(f *schema.Field, path string, def, repDepth int) (schema.Value, error) {
	switch f.Mode {
	case schema.Required:
		return a.assembleContent(f, path, def, repDepth)
	case schema.Nullable:
		lead, err := a.firstLeaf(f, path)
		if err != nil {
			return schema.Value{}, err
		}
		if lead.pos >= len(lead.col.defs) {
			return schema.Value{}, fmt.Errorf("ros: column %q exhausted mid-row", lead.col.leaf.Path)
		}
		if lead.peekDef() <= def {
			// Undefined at this level: consume the null subtree entries.
			a.consumeNullSubtree(f, path)
			return schema.Null(), nil
		}
		return a.assembleContent(f, path, def+1, repDepth)
	case schema.Repeated:
		lead, err := a.firstLeaf(f, path)
		if err != nil {
			return schema.Value{}, err
		}
		if lead.pos >= len(lead.col.defs) {
			return schema.Value{}, fmt.Errorf("ros: column %q exhausted mid-row", lead.col.leaf.Path)
		}
		if lead.peekDef() <= def {
			a.consumeNullSubtree(f, path)
			return schema.List(), nil
		}
		childRep := repDepth + 1
		var elems []schema.Value
		for {
			e, err := a.assembleContent(f, path, def+1, childRep)
			if err != nil {
				return schema.Value{}, err
			}
			elems = append(elems, e)
			if lead.peekRep() != childRep {
				break
			}
		}
		return schema.List(elems...), nil
	}
	return schema.Value{}, fmt.Errorf("ros: field %q has invalid mode", path)
}

func (a *assembler) assembleContent(f *schema.Field, path string, def, repDepth int) (schema.Value, error) {
	if f.Kind == schema.KindStruct {
		fields := make([]schema.Value, len(f.Fields))
		for j, sub := range f.Fields {
			v, err := a.assembleField(sub, path+"."+sub.Name, def, repDepth)
			if err != nil {
				return schema.Value{}, err
			}
			fields[j] = v
		}
		return schema.Struct(fields...), nil
	}
	c := a.byPath[path]
	if c.pos >= len(c.col.defs) {
		return schema.Value{}, fmt.Errorf("ros: column %q exhausted mid-row", path)
	}
	d, v := c.take()
	if d < def {
		return schema.Value{}, fmt.Errorf("ros: column %q def %d below context %d (corrupt levels)", path, d, def)
	}
	return v, nil
}

// consumeNullSubtree advances one entry on every leaf under f.
func (a *assembler) consumeNullSubtree(f *schema.Field, path string) {
	if f.Kind == schema.KindStruct {
		for _, sub := range f.Fields {
			a.consumeNullSubtree(sub, path+"."+sub.Name)
		}
		return
	}
	a.byPath[path].take()
}
