package ros

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"vortex/internal/blockenc"
	"vortex/internal/bloom"
	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/wire"
)

// Errors returned by the ROS codec.
var (
	ErrCorrupt        = errors.New("ros: corrupt file")
	ErrSchemaMismatch = errors.New("ros: schema fingerprint mismatch")
)

const (
	fileMagic = "VXR1"
	// dictionary encoding is chosen when it pays for itself.
	maxDictSize = 1024
)

// Encoding identifies how a column's values are stored.
type Encoding byte

// Column encodings.
const (
	EncodingPlain Encoding = iota
	EncodingDict
)

// ColumnStats are the per-column properties carried by every ROS file
// and indexed by Big Metadata (§6.2, §7.2).
type ColumnStats struct {
	Path      string
	Kind      schema.Kind
	Entries   int64
	Values    int64
	NullCount int64
	HasRange  bool
	Min, Max  schema.Value
	Encoding  Encoding
}

// Writer builds one ROS file from rows added in storage order.
type Writer struct {
	schema   *schema.Schema
	striper  *striper
	changes  []byte
	seqs     []int64
	rowCount int64

	partition    int64
	hasPartition bool
	partitionSet bool
	allowMixed   bool
	mixed        bool
	partitions   []int64

	clusterMin []schema.Value
	clusterMax []schema.Value
	filter     *bloom.Filter
}

// bloomCapacity sizes the per-file clustering bloom filter.
const bloomCapacity = 1 << 16

// NewWriter returns a Writer for rows of schema s.
func NewWriter(s *schema.Schema) *Writer {
	return &Writer{
		schema:  s,
		striper: newStriper(s),
		filter:  bloom.New(bloomCapacity, 0.01),
	}
}

// AllowMixedPartitions permits rows from several partitions in one file
// (the stable 1:1 WOS→ROS conversion of §7.3 preserves the source
// fragment verbatim, and a WOS fragment may span partitions). The file's
// partition id is then unset; PartitionSet returns the full set.
func (w *Writer) AllowMixedPartitions() { w.allowMixed = true }

// Add appends one row with its storage sequence number. Rows must be
// schema-valid; all rows of a file must belong to the same partition
// (the optimizer splits by partition, Figure 5).
func (w *Writer) Add(r schema.Row, seq int64) error {
	if err := w.schema.ValidateRow(r); err != nil {
		return err
	}
	part, ok := w.schema.PartitionOf(r)
	if w.rowCount == 0 {
		w.partition, w.hasPartition = part, ok
		w.partitionSet = true
	} else if ok != w.hasPartition || (ok && part != w.partition) {
		if !w.allowMixed {
			return fmt.Errorf("ros: row partition %d differs from file partition %d", part, w.partition)
		}
		w.mixed = true
		w.hasPartition = false
	}
	w.striper.addRow(r)
	w.changes = append(w.changes, byte(r.Change))
	w.seqs = append(w.seqs, seq)
	w.rowCount++

	// Clustering bookkeeping: range and bloom membership.
	ck := w.schema.ClusterKeyOf(r)
	if len(ck) > 0 {
		if w.clusterMin == nil {
			w.clusterMin = append([]schema.Value(nil), ck...)
			w.clusterMax = append([]schema.Value(nil), ck...)
		} else {
			if schema.CompareClusterKeys(ck, w.clusterMin) < 0 {
				w.clusterMin = append([]schema.Value(nil), ck...)
			}
			if schema.CompareClusterKeys(ck, w.clusterMax) > 0 {
				w.clusterMax = append([]schema.Value(nil), ck...)
			}
		}
		for _, v := range ck {
			if !v.IsNull() {
				w.filter.AddString(v.Key())
			}
		}
	}
	if ok {
		w.filter.AddString(fmt.Sprintf("__part:%d", part))
		w.addPartition(part)
	}
	return nil
}

func (w *Writer) addPartition(p int64) {
	for _, q := range w.partitions {
		if q == p {
			return
		}
	}
	w.partitions = append(w.partitions, p)
}

// Partitions returns every partition id seen by the writer.
func (w *Writer) Partitions() []int64 { return append([]int64(nil), w.partitions...) }

// RowCount returns the number of rows added so far.
func (w *Writer) RowCount() int64 { return w.rowCount }

// ClusterBounds returns the clustering-key range of the added rows.
func (w *Writer) ClusterBounds() (min, max []schema.Value) { return w.clusterMin, w.clusterMax }

// BloomFilter returns the file's clustering/partition bloom filter.
func (w *Writer) BloomFilter() *bloom.Filter { return w.filter }

// SeqBounds returns the min and max sequence numbers of the added rows.
func (w *Writer) SeqBounds() (min, max int64) {
	for i, s := range w.seqs {
		if i == 0 || s < min {
			min = s
		}
		if i == 0 || s > max {
			max = s
		}
	}
	return min, max
}

// Finish encodes the file.
func (w *Writer) Finish() ([]byte, error) {
	out := []byte(fileMagic)
	out = append(out, 1) // version
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], w.schema.Fingerprint())
	out = append(out, fp[:]...)
	out = binary.AppendUvarint(out, uint64(w.schema.Version))
	out = binary.AppendUvarint(out, uint64(w.rowCount))

	if w.hasPartition {
		out = append(out, 1)
		out = binary.AppendVarint(out, w.partition)
	} else {
		out = append(out, 0)
	}
	out = appendValueList(out, w.clusterMin)
	out = appendValueList(out, w.clusterMax)
	fb := w.filter.Marshal()
	out = binary.AppendUvarint(out, uint64(len(fb)))
	out = append(out, fb...)

	// Row metadata: change types and sequence numbers.
	out = append(out, w.changes...)
	for _, s := range w.seqs {
		out = binary.AppendVarint(out, s)
	}

	out = binary.AppendUvarint(out, uint64(len(w.striper.cols)))
	for _, c := range w.striper.cols {
		out = encodeColumn(out, c)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], blockenc.Checksum(out))
	return append(out, crc[:]...), nil
}

func appendValueList(dst []byte, vs []schema.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = rowenc.AppendValue(dst, v)
	}
	return dst
}

func decodeValueList(data []byte, pos int) ([]schema.Value, int, error) {
	n, used := binary.Uvarint(data[pos:])
	if used <= 0 || n > 1<<16 {
		return nil, 0, ErrCorrupt
	}
	pos += used
	out := make([]schema.Value, n)
	for i := range out {
		v, used, err := rowenc.DecodeValue(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		out[i] = v
		pos += used
	}
	return out, pos, nil
}

// rleEncode run-length encodes a byte slice as (count, value) pairs.
func rleEncode(levels []uint8) []byte {
	var out []byte
	for i := 0; i < len(levels); {
		j := i + 1
		for j < len(levels) && levels[j] == levels[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, levels[i])
		i = j
	}
	return out
}

func rleDecode(data []byte, total int) ([]uint8, error) {
	out := make([]uint8, 0, total)
	pos := 0
	for len(out) < total {
		n, used := binary.Uvarint(data[pos:])
		if used <= 0 || int(n) > total-len(out) {
			return nil, ErrCorrupt
		}
		pos += used
		if pos >= len(data) && n > 0 {
			return nil, ErrCorrupt
		}
		v := data[pos]
		pos++
		for k := uint64(0); k < n; k++ {
			out = append(out, v)
		}
	}
	if pos != len(data) {
		return nil, ErrCorrupt
	}
	return out, nil
}

// encodeColumn serializes one column chunk.
func encodeColumn(out []byte, c *columnData) []byte {
	out = binary.AppendUvarint(out, uint64(len(c.leaf.Path)))
	out = append(out, c.leaf.Path...)
	out = append(out, byte(c.leaf.Kind), byte(c.leaf.MaxRep), byte(c.leaf.MaxDef))
	out = binary.AppendUvarint(out, uint64(len(c.reps)))
	out = binary.AppendUvarint(out, uint64(len(c.values)))

	// Stats.
	stats := computeStats(c)
	if stats.HasRange {
		out = append(out, 1)
		out = rowenc.AppendValue(out, stats.Min)
		out = rowenc.AppendValue(out, stats.Max)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(stats.NullCount))

	// Levels.
	reps := rleEncode(c.reps)
	out = binary.AppendUvarint(out, uint64(len(reps)))
	out = append(out, reps...)
	defs := rleEncode(c.defs)
	out = binary.AppendUvarint(out, uint64(len(defs)))
	out = append(out, defs...)

	// Values: choose dictionary encoding when it pays.
	enc, page := encodeValues(c.values)
	out = append(out, byte(enc))
	out = binary.AppendUvarint(out, uint64(len(page)))
	return append(out, page...)
}

func computeStats(c *columnData) ColumnStats {
	s := ColumnStats{
		Path:    c.leaf.Path,
		Kind:    c.leaf.Kind,
		Entries: int64(len(c.reps)),
		Values:  int64(len(c.values)),
	}
	s.NullCount = s.Entries - s.Values
	if !c.leaf.Kind.Comparable() {
		return s
	}
	for _, v := range c.values {
		if !s.HasRange {
			s.Min, s.Max, s.HasRange = v, v, true
			continue
		}
		if v.Compare(s.Min) < 0 {
			s.Min = v
		}
		if v.Compare(s.Max) > 0 {
			s.Max = v
		}
	}
	return s
}

func encodeValues(values []schema.Value) (Encoding, []byte) {
	// Count distinct values by rendered key (cheap and kind-faithful for
	// the scalar kinds we store).
	if len(values) >= 8 {
		distinct := make(map[string]int, maxDictSize+1)
		keys := make([]string, len(values))
		ok := true
		for i, v := range values {
			k := v.String()
			keys[i] = k
			if _, seen := distinct[k]; !seen {
				if len(distinct) >= maxDictSize {
					ok = false
					break
				}
				distinct[k] = len(distinct)
			}
		}
		if ok && len(distinct)*2 <= len(values) {
			// Dictionary page: dict entries in first-seen order, then indexes.
			var out []byte
			out = binary.AppendUvarint(out, uint64(len(distinct)))
			emitted := make(map[string]bool, len(distinct))
			for i, v := range values {
				if !emitted[keys[i]] {
					emitted[keys[i]] = true
					out = rowenc.AppendValue(out, v)
				}
			}
			// Re-walk to emit dictionary ids in first-seen numbering.
			ids := make(map[string]uint64, len(distinct))
			next := uint64(0)
			for _, k := range keys {
				if _, seen := ids[k]; !seen {
					ids[k] = next
					next++
				}
			}
			for _, k := range keys {
				out = binary.AppendUvarint(out, ids[k])
			}
			return EncodingDict, out
		}
	}
	var out []byte
	for _, v := range values {
		out = rowenc.AppendValue(out, v)
	}
	return EncodingPlain, out
}

func decodeValues(enc Encoding, data []byte, n int) ([]schema.Value, error) {
	switch enc {
	case EncodingPlain:
		out := make([]schema.Value, n)
		pos := 0
		for i := 0; i < n; i++ {
			v, used, err := rowenc.DecodeValue(data[pos:])
			if err != nil {
				return nil, err
			}
			out[i] = v
			pos += used
		}
		if pos != len(data) {
			return nil, ErrCorrupt
		}
		return out, nil
	case EncodingDict:
		dn, used := binary.Uvarint(data)
		if used <= 0 || dn > maxDictSize {
			return nil, ErrCorrupt
		}
		pos := used
		dict := make([]schema.Value, dn)
		for i := range dict {
			v, u, err := rowenc.DecodeValue(data[pos:])
			if err != nil {
				return nil, err
			}
			dict[i] = v
			pos += u
		}
		out := make([]schema.Value, n)
		for i := 0; i < n; i++ {
			id, u := binary.Uvarint(data[pos:])
			if u <= 0 || id >= dn {
				return nil, ErrCorrupt
			}
			out[i] = dict[id]
			pos += u
		}
		if pos != len(data) {
			return nil, ErrCorrupt
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: encoding %d", ErrCorrupt, enc)
}

// Column is one column chunk. Level and value pages are decoded lazily:
// a projected scan materializes only the columns it touches, which is
// where the read-optimized format earns its name.
type Column struct {
	Leaf   schema.LeafColumn
	Reps   []uint8
	Defs   []uint8
	Values []schema.Value
	Stats  ColumnStats

	rawReps   []byte
	rawDefs   []byte
	rawValues []byte

	// mu guards lazy decoding: a Reader may be shared across concurrent
	// scans (the client's read cache hands one Reader to every query),
	// so materialize must be safe to race.
	mu      sync.Mutex
	decoded bool

	// Memoized encoded-form view (vector.go); built at most once, then
	// shared zero-copy with every vectorized scan.
	vecDone bool
	vec     *wire.Vector
	vecErr  error
}

// materialize decodes the column's level and value pages.
func (c *Column) materialize() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decoded {
		return nil
	}
	var err error
	c.Reps, err = rleDecode(c.rawReps, int(c.Stats.Entries))
	if err != nil {
		return err
	}
	c.Defs, err = rleDecode(c.rawDefs, int(c.Stats.Entries))
	if err != nil {
		return err
	}
	c.Values, err = decodeValues(c.Stats.Encoding, c.rawValues, int(c.Stats.Values))
	if err != nil {
		return err
	}
	c.decoded = true
	return nil
}

// Reader provides access to one ROS file.
type Reader struct {
	fingerprint   uint64
	schemaVersion int
	rowCount      int64
	partition     int64
	hasPartition  bool
	clusterMin    []schema.Value
	clusterMax    []schema.Value
	filter        *bloom.Filter
	changes       []byte
	seqs          []int64
	columns       map[string]*Column
	order         []string
}

// Open parses a ROS file image.
func Open(data []byte) (*Reader, error) {
	if len(data) < 4+1+8+4 || string(data[:4]) != fileMagic {
		return nil, ErrCorrupt
	}
	body := data[:len(data)-4]
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != blockenc.Checksum(body) {
		return nil, fmt.Errorf("%w: checksum", ErrCorrupt)
	}
	if data[4] != 1 {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, data[4])
	}
	r := &Reader{columns: make(map[string]*Column)}
	r.fingerprint = binary.LittleEndian.Uint64(data[5:13])
	pos := 13
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(body[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}
	schemaV, err := uv()
	if err != nil {
		return nil, err
	}
	r.schemaVersion = int(schemaV)
	rc, err := uv()
	if err != nil || rc > 1<<40 {
		return nil, ErrCorrupt
	}
	r.rowCount = int64(rc)
	if pos >= len(body) {
		return nil, ErrCorrupt
	}
	hasPart := body[pos]
	pos++
	if hasPart == 1 {
		p, err := sv()
		if err != nil {
			return nil, err
		}
		r.partition, r.hasPartition = p, true
	} else if hasPart != 0 {
		return nil, ErrCorrupt
	}
	r.clusterMin, pos, err = decodeValueList(body, pos)
	if err != nil {
		return nil, err
	}
	r.clusterMax, pos, err = decodeValueList(body, pos)
	if err != nil {
		return nil, err
	}
	fl, err := uv()
	if err != nil || pos+int(fl) > len(body) {
		return nil, ErrCorrupt
	}
	r.filter, err = bloom.Unmarshal(body[pos : pos+int(fl)])
	if err != nil {
		return nil, fmt.Errorf("%w: bloom: %v", ErrCorrupt, err)
	}
	pos += int(fl)

	// Row metadata.
	if pos+int(r.rowCount) > len(body) {
		return nil, ErrCorrupt
	}
	r.changes = append([]byte(nil), body[pos:pos+int(r.rowCount)]...)
	pos += int(r.rowCount)
	r.seqs = make([]int64, r.rowCount)
	for i := range r.seqs {
		s, err := sv()
		if err != nil {
			return nil, err
		}
		r.seqs[i] = s
	}

	ncols, err := uv()
	if err != nil || ncols > 1<<16 {
		return nil, ErrCorrupt
	}
	for i := 0; i < int(ncols); i++ {
		col, next, err := decodeColumn(body, pos)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		r.columns[col.Leaf.Path] = col
		r.order = append(r.order, col.Leaf.Path)
		pos = next
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-pos)
	}
	return r, nil
}

func decodeColumn(body []byte, pos int) (*Column, int, error) {
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		pos += n
		return v, nil
	}
	plen, err := uv()
	if err != nil || pos+int(plen) > len(body) || plen > 1<<12 {
		return nil, 0, ErrCorrupt
	}
	path := string(body[pos : pos+int(plen)])
	pos += int(plen)
	if pos+3 > len(body) {
		return nil, 0, ErrCorrupt
	}
	kind := schema.Kind(body[pos])
	maxRep := int(body[pos+1])
	maxDef := int(body[pos+2])
	pos += 3
	nEntries, err := uv()
	if err != nil || nEntries > 1<<40 {
		return nil, 0, ErrCorrupt
	}
	nValues, err := uv()
	if err != nil || nValues > nEntries {
		return nil, 0, ErrCorrupt
	}
	col := &Column{Leaf: schema.LeafColumn{Path: path, Kind: kind, MaxRep: maxRep, MaxDef: maxDef}}
	col.Stats = ColumnStats{Path: path, Kind: kind, Entries: int64(nEntries), Values: int64(nValues)}
	if pos >= len(body) {
		return nil, 0, ErrCorrupt
	}
	hasRange := body[pos]
	pos++
	if hasRange == 1 {
		mn, used, err := rowenc.DecodeValue(body[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		mx, used, err := rowenc.DecodeValue(body[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		col.Stats.Min, col.Stats.Max, col.Stats.HasRange = mn, mx, true
	} else if hasRange != 0 {
		return nil, 0, ErrCorrupt
	}
	nulls, err := uv()
	if err != nil {
		return nil, 0, err
	}
	col.Stats.NullCount = int64(nulls)

	repLen, err := uv()
	if err != nil || pos+int(repLen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	col.rawReps = body[pos : pos+int(repLen)]
	pos += int(repLen)
	defLen, err := uv()
	if err != nil || pos+int(defLen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	col.rawDefs = body[pos : pos+int(defLen)]
	pos += int(defLen)
	if pos >= len(body) {
		return nil, 0, ErrCorrupt
	}
	enc := Encoding(body[pos])
	pos++
	col.Stats.Encoding = enc
	vLen, err := uv()
	if err != nil || pos+int(vLen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	col.rawValues = body[pos : pos+int(vLen)]
	pos += int(vLen)
	return col, pos, nil
}

// RowCount returns the number of rows in the file.
func (r *Reader) RowCount() int64 { return r.rowCount }

// SchemaFingerprint returns the fingerprint the file was written under.
func (r *Reader) SchemaFingerprint() uint64 { return r.fingerprint }

// SchemaVersion returns the schema version the file was written under.
func (r *Reader) SchemaVersion() int { return r.schemaVersion }

// Partition returns the file's partition id (days since epoch).
func (r *Reader) Partition() (int64, bool) { return r.partition, r.hasPartition }

// ClusterRange returns the min and max clustering keys of the file.
func (r *Reader) ClusterRange() (min, max []schema.Value) { return r.clusterMin, r.clusterMax }

// Bloom returns the clustering/partition bloom filter.
func (r *Reader) Bloom() *bloom.Filter { return r.filter }

// Column returns the decoded column at path, or nil. It returns nil
// also when the column's pages fail to decode; Rows reports such errors.
func (r *Reader) Column(path string) *Column {
	c := r.columns[path]
	if c == nil {
		return nil
	}
	if err := c.materialize(); err != nil {
		return nil
	}
	return c
}

// ColumnPaths returns the column paths in file order.
func (r *Reader) ColumnPaths() []string { return append([]string(nil), r.order...) }

// Stats returns the stats for every column, in file order.
func (r *Reader) Stats() []ColumnStats {
	out := make([]ColumnStats, 0, len(r.order))
	for _, p := range r.order {
		out = append(out, r.columns[p].Stats)
	}
	return out
}

// Rows re-assembles every row in the file under schema s (which must
// have the same fingerprint the file was written with, or be an evolved
// superset of it — the caller resolves schema versions via the SMS).
func (r *Reader) Rows(s *schema.Schema) ([]rowenc.Stamped, error) {
	return r.RowsProjected(s, nil)
}

// RowsProjected assembles only the named top-level columns (nil = all):
// the projected read path of a columnar store. Unprojected fields read
// as NULL; row count, order, sequences and change types are unaffected.
func (r *Reader) RowsProjected(s *schema.Schema, projection map[string]bool) ([]rowenc.Stamped, error) {
	// Assemble only the leaves present in the file; columns for fields
	// added by schema evolution are absent and read as NULL.
	present := make(map[string]bool, len(r.order))
	for _, p := range r.order {
		if projection != nil {
			top := p
			if i := indexByte(p, '.'); i >= 0 {
				top = p[:i]
			}
			if !projection[top] {
				continue
			}
		}
		present[p] = true
	}
	var cols []*columnData
	for _, p := range r.order {
		if !present[p] {
			continue
		}
		c := r.columns[p]
		if err := c.materialize(); err != nil {
			return nil, err
		}
		cols = append(cols, &columnData{leaf: c.Leaf, reps: c.Reps, defs: c.Defs, values: c.Values})
	}
	fileSchema, err := restrictSchema(s, present)
	if err != nil {
		return nil, err
	}
	out := make([]rowenc.Stamped, 0, r.rowCount)
	if len(cols) == 0 {
		// Nothing projected: emit bare rows (COUNT(*)-style scans still
		// need row multiplicity, sequences and change types).
		for i := int64(0); i < r.rowCount; i++ {
			row := expandRow(s, &schema.Schema{}, schema.Row{})
			row.Change = schema.ChangeType(r.changes[i])
			out = append(out, rowenc.Stamped{Row: row, Seq: r.seqs[i]})
		}
		return out, nil
	}
	a := newAssembler(fileSchema, cols)
	for i := int64(0); i < r.rowCount; i++ {
		row, ok, err := a.nextRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: columns exhausted at row %d of %d", ErrCorrupt, i, r.rowCount)
		}
		// Re-expand to the full schema arity: missing trailing fields NULL.
		row = expandRow(s, fileSchema, row)
		row.Change = schema.ChangeType(r.changes[i])
		out = append(out, rowenc.Stamped{Row: row, Seq: r.seqs[i]})
	}
	if !a.exhausted() {
		return nil, fmt.Errorf("%w: trailing column entries after %d rows", ErrCorrupt, r.rowCount)
	}
	return out, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// restrictSchema returns s limited to top-level fields all of whose
// leaves are present in the file (fields added after the file was
// written are dropped and re-added as NULL by expandRow).
func restrictSchema(s *schema.Schema, present map[string]bool) (*schema.Schema, error) {
	out := &schema.Schema{
		PrimaryKey:     s.PrimaryKey,
		PartitionField: s.PartitionField,
		ClusterBy:      s.ClusterBy,
		Version:        s.Version,
	}
	for _, f := range s.Fields {
		leaves := (&schema.Schema{Fields: []*schema.Field{f}}).Leaves()
		all, any := true, false
		for _, l := range leaves {
			if present[l.Path] {
				any = true
			} else {
				all = false
			}
		}
		if any && !all {
			return nil, fmt.Errorf("%w: field %q partially present", ErrSchemaMismatch, f.Name)
		}
		if all {
			out.Fields = append(out.Fields, f)
		}
	}
	return out, nil
}

// expandRow maps a row assembled under fileSchema back to full's arity.
func expandRow(full, fileSchema *schema.Schema, row schema.Row) schema.Row {
	if len(fileSchema.Fields) == len(full.Fields) {
		return row
	}
	values := make([]schema.Value, len(full.Fields))
	j := 0
	for i, f := range full.Fields {
		if j < len(fileSchema.Fields) && fileSchema.Fields[j].Name == f.Name {
			values[i] = row.Values[j]
			j++
		} else {
			values[i] = schema.Null()
		}
	}
	return schema.Row{Values: values}
}

// ChangeAt returns the change type of row i.
func (r *Reader) ChangeAt(i int64) schema.ChangeType { return schema.ChangeType(r.changes[i]) }

// SeqAt returns the sequence number of row i.
func (r *Reader) SeqAt(i int64) int64 { return r.seqs[i] }
