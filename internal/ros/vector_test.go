package ros

import (
	"testing"

	"vortex/internal/schema"
	"vortex/internal/wire"
)

func flatSchema() *schema.Schema {
	return &schema.Schema{Fields: []*schema.Field{
		{Name: "region", Kind: schema.KindString, Mode: schema.Required},
		{Name: "qty", Kind: schema.KindInt64, Mode: schema.Nullable},
		{Name: "id", Kind: schema.KindInt64, Mode: schema.Required},
	}}
}

func writeFlatFile(t *testing.T, s *schema.Schema, n int) *Reader {
	t.Helper()
	w := NewWriter(s)
	regions := []string{"us-west", "us-east", "eu-west"}
	for i := 0; i < n; i++ {
		qty := schema.Null()
		if i%5 != 0 {
			qty = schema.Int64(int64(i % 7))
		}
		if err := w.Add(schema.NewRow(schema.String(regions[i%3]), qty, schema.Int64(int64(i))), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestVectorsMatchRows checks the encoded-vector view agrees with full
// row assembly, including a dictionary column with interleaved NULLs.
func TestVectorsMatchRows(t *testing.T) {
	s := flatSchema()
	rd := writeFlatFile(t, s, 200)
	vecs, idxs, ok, err := rd.Vectors(s, nil)
	if err != nil || !ok {
		t.Fatalf("Vectors: ok=%v err=%v", ok, err)
	}
	if len(vecs) != 3 {
		t.Fatalf("got %d vectors", len(vecs))
	}
	if vecs[0].Enc != wire.BatchEncDict {
		t.Fatalf("region should come back dictionary-encoded, got %d", vecs[0].Enc)
	}
	if len(vecs[0].Dict) != 3 {
		t.Fatalf("region dict has %d entries, want 3", len(vecs[0].Dict))
	}
	rows, err := rd.Rows(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		for k, v := range vecs {
			got := v.ValueAt(i)
			want := r.Row.Values[idxs[k]]
			if got.String() != want.String() {
				t.Fatalf("row %d col %s: vector %v, rows %v", i, v.Name, got, want)
			}
		}
	}
	if rd.Seqs()[5] != 5 || len(rd.Changes()) != 200 {
		t.Fatal("Seqs/Changes accessors broken")
	}
}

// TestVectorsProjectionSkipsDecode: unprojected columns must stay
// undecoded — the projection-pushdown contract for cached fragments.
func TestVectorsProjectionSkipsDecode(t *testing.T) {
	s := flatSchema()
	rd := writeFlatFile(t, s, 100)
	vecs, idxs, ok, err := rd.Vectors(s, map[string]bool{"id": true})
	if err != nil || !ok {
		t.Fatalf("Vectors: ok=%v err=%v", ok, err)
	}
	if len(vecs) != 1 || idxs[0] != 2 || vecs[0].Name != "id" {
		t.Fatalf("projection leaked: %v %v", vecs, idxs)
	}
	for _, path := range []string{"region", "qty"} {
		c := rd.columns[path]
		c.mu.Lock()
		touched := c.decoded || c.vecDone
		c.mu.Unlock()
		if touched {
			t.Fatalf("unprojected column %q was decoded", path)
		}
	}
}

// TestVectorsNestedFallsBack: a struct field forces the row path.
func TestVectorsNestedFallsBack(t *testing.T) {
	s := dremelSchema()
	w := NewWriter(s)
	for i, r := range dremelRows() {
		if err := w.Add(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := rd.Vectors(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("nested schema must fall back to row assembly")
	}
	// Projecting only the flat field still vectorizes.
	vecs, idxs, ok, err := rd.Vectors(s, map[string]bool{"DocId": true})
	if err != nil || !ok {
		t.Fatalf("flat projection: ok=%v err=%v", ok, err)
	}
	if len(vecs) != 1 || idxs[0] != 0 || vecs[0].ValueAt(1).AsInt64() != 20 {
		t.Fatalf("DocId vector wrong: %v", vecs)
	}
}

// TestVectorsEvolvedFieldReadsNull: a field added after the file was
// written comes back as an all-NULL constant vector.
func TestVectorsEvolvedFieldReadsNull(t *testing.T) {
	s := flatSchema()
	rd := writeFlatFile(t, s, 10)
	evolved, err := s.AddField(&schema.Field{Name: "extra", Kind: schema.KindString, Mode: schema.Nullable})
	if err != nil {
		t.Fatal(err)
	}
	vecs, idxs, ok, err := rd.Vectors(evolved, map[string]bool{"extra": true})
	if err != nil || !ok {
		t.Fatalf("Vectors: ok=%v err=%v", ok, err)
	}
	if len(vecs) != 1 || idxs[0] != 3 || vecs[0].Len() != 10 || !vecs[0].ValueAt(7).IsNull() {
		t.Fatalf("evolved column vector wrong: %v", vecs)
	}
}
