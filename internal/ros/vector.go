package ros

import (
	"encoding/binary"
	"fmt"

	"vortex/internal/rowenc"
	"vortex/internal/schema"
	"vortex/internal/wire"
)

// Vectors returns the projected top-level columns of the file as
// encoded wire vectors — the zero-copy handoff from the read cache to
// the vectorized scanner. It is only defined for flat columns:
// when any projected field is a struct or repeated, it returns
// ok=false and the caller falls back to row assembly (RowsProjected).
//
// Vectors preserve the file's physical encoding: a dictionary column
// comes back as dict+codes without expansion, so predicates evaluate
// once per distinct value, and unprojected columns are never decoded
// at all. idxs holds each vector's top-level field index in s. The
// returned vectors are cached on the reader's columns and shared
// across scans — read-only, like everything else a cached Reader hands
// out.
func (r *Reader) Vectors(s *schema.Schema, projection map[string]bool) (vecs []wire.Vector, idxs []int, ok bool, err error) {
	for fi, f := range s.Fields {
		if projection != nil && !projection[f.Name] {
			continue
		}
		if f.Kind == schema.KindStruct || f.Mode == schema.Repeated {
			return nil, nil, false, nil
		}
		col := r.columns[f.Name]
		var v *wire.Vector
		if col == nil {
			// Field added by schema evolution after this file was written:
			// every row reads as NULL.
			cv := wire.ConstVector(f.Name, schema.Null(), int(r.rowCount))
			v = &cv
		} else {
			v, err = col.vector(r.rowCount)
			if err != nil {
				return nil, nil, false, err
			}
		}
		vecs = append(vecs, *v)
		idxs = append(idxs, fi)
	}
	return vecs, idxs, true, nil
}

// Seqs returns the per-row storage sequence numbers. The slice is the
// reader's own and must not be mutated.
func (r *Reader) Seqs() []int64 { return r.seqs }

// Changes returns the per-row change types. Read-only, like Seqs.
func (r *Reader) Changes() []byte { return r.changes }

// vector lazily builds (and memoizes) the column's encoded vector.
// Unlike materialize, a null-free column skips level decoding entirely
// and a dictionary column keeps its codes — nothing is expanded.
func (c *Column) vector(rowCount int64) (*wire.Vector, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vecDone {
		return c.vec, c.vecErr
	}
	c.vec, c.vecErr = c.buildVector(rowCount)
	c.vecDone = true
	return c.vec, c.vecErr
}

func (c *Column) buildVector(rowCount int64) (*wire.Vector, error) {
	if c.Leaf.MaxRep != 0 || c.Stats.Entries != rowCount {
		return nil, fmt.Errorf("%w: column %q is not flat", ErrCorrupt, c.Leaf.Path)
	}
	name := c.Leaf.Path
	nulls := c.Stats.NullCount > 0
	var defs []uint8
	if nulls {
		var err error
		defs, err = rleDecode(c.rawDefs, int(c.Stats.Entries))
		if err != nil {
			return nil, err
		}
	}
	switch c.Stats.Encoding {
	case EncodingDict:
		dict, codes, err := decodeDictPage(c.rawValues, int(c.Stats.Values))
		if err != nil {
			return nil, err
		}
		if !nulls {
			v := wire.DictVector(name, dict, codes)
			return &v, nil
		}
		// Nulls become one extra dictionary entry, so code-space
		// predicates see NULL like any other distinct value.
		nullCode := uint32(len(dict))
		dict = append(dict, schema.Null())
		full := make([]uint32, rowCount)
		vi := 0
		for i := range full {
			if int(defs[i]) == c.Leaf.MaxDef {
				full[i] = codes[vi]
				vi++
			} else {
				full[i] = nullCode
			}
		}
		v := wire.DictVector(name, dict, full)
		return &v, nil
	default:
		vals, err := decodeValues(c.Stats.Encoding, c.rawValues, int(c.Stats.Values))
		if err != nil {
			return nil, err
		}
		if !nulls {
			v := wire.PlainVector(name, vals)
			return &v, nil
		}
		full := make([]schema.Value, rowCount)
		vi := 0
		for i := range full {
			if int(defs[i]) == c.Leaf.MaxDef {
				full[i] = vals[vi]
				vi++
			} else {
				full[i] = schema.Null()
			}
		}
		v := wire.PlainVector(name, full)
		return &v, nil
	}
}

// decodeDictPage decodes a dictionary value page without expanding
// codes to values — the decode path of the code-space filter.
func decodeDictPage(data []byte, n int) ([]schema.Value, []uint32, error) {
	dn, used := binary.Uvarint(data)
	if used <= 0 || dn > maxDictSize {
		return nil, nil, ErrCorrupt
	}
	pos := used
	dict := make([]schema.Value, dn)
	for i := range dict {
		v, u, err := rowenc.DecodeValue(data[pos:])
		if err != nil {
			return nil, nil, err
		}
		dict[i] = v
		pos += u
	}
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		id, u := binary.Uvarint(data[pos:])
		if u <= 0 || id >= dn {
			return nil, nil, ErrCorrupt
		}
		codes[i] = uint32(id)
		pos += u
	}
	if pos != len(data) {
		return nil, nil, ErrCorrupt
	}
	return dict, codes, nil
}
