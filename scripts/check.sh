#!/usr/bin/env sh
# Full local check: formatting gate + vet + race-enabled tests across
# every package. The chaos suite (internal/chaos, core/client chaos
# tests) is expected to be deterministic under -race; any ordering
# flake is a bug.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...
