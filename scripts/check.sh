#!/usr/bin/env sh
# Full local check: vet + race-enabled tests across every package.
# The chaos suite (internal/chaos, core/client chaos tests) is expected
# to be deterministic under -race; any ordering flake is a bug.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...
