#!/usr/bin/env sh
# Full local check: formatting gate + vet + race-enabled tests across
# every package. The chaos suite (internal/chaos, core/client chaos
# tests) is expected to be deterministic under -race; any ordering
# flake is a bug, so tests run with -shuffle=on to surface hidden
# inter-test order dependencies.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race -shuffle=on ./...

# Fuzz smoke: a short budget per decoder target catches regressions in
# the hostile-input guards without turning the check into a soak. The
# checked-in corpora under testdata/fuzz run as plain seeds above; this
# explores beyond them.
for target in FuzzDecodeRow FuzzDecodeRows; do
    go test -run '^$' -fuzz "${target}\$" -fuzztime 10s ./internal/rowenc/
done
go test -run '^$' -fuzz 'FuzzOpen$' -fuzztime 10s ./internal/blockenc/
