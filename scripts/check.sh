#!/usr/bin/env sh
# Full local check: formatting gate + vet + race-enabled tests across
# every package. The chaos suite (internal/chaos, core/client chaos
# tests) is expected to be deterministic under -race; any ordering
# flake is a bug, so tests run with -shuffle=on to surface hidden
# inter-test order dependencies.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race -shuffle=on ./...

# The read-session subsystem and its dataflow source connector are the
# most concurrency-dense packages (parallel shard readers, splits racing
# the serve loop, simulated worker crashes): run them again under -race
# with a higher shuffle-independent count so interleavings vary.
go test -race -count=2 ./internal/readsession/ ./internal/dataflow/

# The vectorized query engine shards leaf scans across workers and
# shares cached column vectors between them: run it again under -race
# so batch/selection handoffs see varied interleavings.
go test -race -count=2 ./internal/query/

# The overload-protection layer races admission bookkeeping, heartbeat
# coalescing and Slicer reassignment windows against thousands of
# writers: run the slicer and sms suites twice more under -race so the
# token-bucket and double-assignment paths see varied interleavings.
go test -race -count=2 ./internal/slicer/ ./internal/sms/

# The transport layer multiplexes unary calls and bi-di streams over
# shared connections (and, for TCP, over real sockets with per-stream
# flow-control windows): run the rpc suite — including the
# cross-transport conformance matrix — twice more under -race so
# connection-teardown and window-update interleavings vary.
go test -race -count=2 ./internal/rpc/

# Bench smoke in -short mode: proves the experiment harness still builds
# and runs end-to-end without paying for full latency-model experiments
# (those are skipped under -short and run in the main suite above).
go test -short ./internal/bench/

# Vectorized execution smoke: code-skip accounting in the query engine
# and columnar-vs-row serving parity in the read-session server — the
# fast end-to-end proof that encoded-domain filtering still matches the
# row path bit for bit.
go test -short -count=1 -run 'TestVectorized' ./internal/query/ ./internal/readsession/

# Fanout overload smoke: the -short variant of the massive-fanout
# experiment (128 zipf-skewed streams against squeezed quotas) asserts
# the no-loss and always-retryable invariants end to end.
go test -short -count=1 -run 'TestFanoutSmoke' ./internal/bench/

# Materialized-view maintenance applies CDC deltas through the
# dataflow source's parallel shard readers and writes view rows through
# the partitioned sink; the sql package feeds it parsed definitions.
# Run both twice more under -race so source/sink interleavings vary.
go test -race -count=2 ./internal/matview/ ./internal/sql/

# Matview smoke: the -short variant of the incremental-maintenance
# experiment churns a joined GROUP BY view and asserts digest equality
# against full recompute at every pinned snapshot.
go test -short -count=1 -run 'TestMatviewSmoke' ./internal/bench/

# Disk-tier cache: the on-disk LRU mixes file IO with lock-protected
# index state and races Put/Get/Invalidate against GC unlinks — run it
# twice more under -race so the unlink/overwrite interleavings vary.
go test -race -count=2 ./internal/disktier/

# Cache-pressure smoke: the -short variant of the tiered-cache
# experiment (working set 10x RAM, prefetch-warmed disk tier) asserts
# zero Colossus reads on the warm side and zero stale reads after GC.
go test -short -count=1 -run 'TestCachePressureSmoke' ./internal/bench/

# Cluster smoke: spawns a real coordinator + one worker as separate OS
# processes talking over the TCP transport, drives a second of appends
# through the full stack, and asserts the exactly-once invariant
# (lost=0, phantom=0) across process boundaries.
go test -short -count=1 -run 'TestClusterSmoke' ./internal/bench/

# Fuzz smoke: a short budget per decoder target catches regressions in
# the hostile-input guards without turning the check into a soak. The
# checked-in corpora under testdata/fuzz run as plain seeds above; this
# explores beyond them.
for target in FuzzDecodeRow FuzzDecodeRows; do
    go test -run '^$' -fuzz "${target}\$" -fuzztime 10s ./internal/rowenc/
done
go test -run '^$' -fuzz 'FuzzOpen$' -fuzztime 10s ./internal/blockenc/
go test -run '^$' -fuzz 'FuzzDecodeRecordBatch$' -fuzztime 10s ./internal/wire/
go test -run '^$' -fuzz 'FuzzSelectionGather$' -fuzztime 10s ./internal/wire/
go test -run '^$' -fuzz 'FuzzDecodeEntry$' -fuzztime 10s ./internal/disktier/
go test -run '^$' -fuzz 'FuzzDecodeFrame$' -fuzztime 10s ./internal/rpc/
go test -run '^$' -fuzz 'FuzzParse$' -fuzztime 10s ./internal/sql/
