// CDC replication with `_CHANGE_TYPE` (§4.2.6): an order book replicated
// into Vortex using UPSERT and DELETE change types against an unenforced
// primary key. "When a user uses only the UPSERT and DELETE change
// types, uniqueness of primary keys is enforced by construction."
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vortex"
)

func main() {
	ctx := context.Background()
	db := vortex.Open(vortex.WithClusters("alpha", "beta"), vortex.WithSeed(1))

	ordersSchema := &vortex.Schema{
		Fields: []*vortex.Field{
			{Name: "updatedAt", Kind: vortex.TimestampKind, Mode: vortex.Required},
			{Name: "orderId", Kind: vortex.StringKind, Mode: vortex.Required},
			{Name: "status", Kind: vortex.StringKind, Mode: vortex.Required},
			{Name: "total", Kind: vortex.NumericKind, Mode: vortex.Nullable},
		},
		PrimaryKey:     []string{"orderId"},
		PartitionField: "updatedAt",
	}
	if err := db.CreateTable(ctx, "shop.orders", ordersSchema); err != nil {
		log.Fatal(err)
	}
	s, err := db.Table("shop.orders").NewStream(ctx, vortex.Unbuffered)
	if err != nil {
		log.Fatal(err)
	}

	at := time.Now().UTC()
	mk := func(id, status string, cents int64) vortex.Row {
		at = at.Add(time.Millisecond)
		return vortex.NewRow(
			vortex.TimestampValue(at),
			vortex.StringValue(id),
			vortex.StringValue(status),
			vortex.NumericValue(cents*10_000_000), // cents → 1e-9 units
		)
	}
	send := func(rows ...vortex.Row) {
		if _, err := s.Append(ctx, rows, vortex.AppendOptions{Offset: -1}); err != nil {
			log.Fatal(err)
		}
	}

	// A change stream: creates, updates, a cancellation, a deletion.
	send(
		mk("ORD-1", "created", 2599).WithChange(vortex.Upsert),
		mk("ORD-2", "created", 999).WithChange(vortex.Upsert),
		mk("ORD-3", "created", 15000).WithChange(vortex.Upsert),
	)
	send(mk("ORD-1", "paid", 2599).WithChange(vortex.Upsert))
	send(mk("ORD-2", "cancelled", 999).WithChange(vortex.Upsert))
	send(mk("ORD-1", "shipped", 2599).WithChange(vortex.Upsert))
	send(mk("ORD-2", "", 0).WithChange(vortex.Delete)) // GDPR erasure

	res, err := db.Query(ctx, "SELECT orderId, status, total FROM shop.orders ORDER BY orderId")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("order book after replaying the change stream:")
	for _, r := range res.Rows() {
		fmt.Printf("  %-6s %-9s %s\n", r[0].AsString(), r[1].AsString(), r[2])
	}
	if len(res.Rows()) != 2 {
		log.Fatalf("expected 2 live orders, got %d (PK uniqueness by construction broken)", len(res.Rows()))
	}

	// The optimizer compacts superseded versions physically (§6.1) while
	// reads stay identical.
	db.Heartbeat(ctx)
	if _, err := s.Finalize(ctx); err != nil {
		log.Fatal(err)
	}
	db.Heartbeat(ctx)
	opt, err := db.Optimize(ctx, "shop.orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer compacted %d acked change rows down to %d stored rows\n", 7, opt.RowsConverted)
	res, err = db.Query(ctx, "SELECT COUNT(*) FROM shop.orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(*) after compaction: %s (unchanged)\n", res.Rows()[0][0])
}
