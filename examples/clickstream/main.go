// Clickstream: the paper's motivating log-analytics scenario (§1) —
// many resource-constrained producers push events straight to the
// warehouse (no local buffering, no batch loads, no extra copies), while
// continuous SQL queries watch the stream with sub-second freshness and
// the storage optimizer keeps layout query-friendly in the background.
// A live materialized view (DESIGN.md §14) rolls the stream up to
// per-page view counts as it arrives.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"vortex"
	"vortex/internal/workload"
)

// clicksSchema is the workload's event schema with a primary key in
// front: keyed rows are what lets the materialized view retract and
// re-aggregate on UPSERT/DELETE change capture.
func clicksSchema() *vortex.Schema {
	base := workload.EventsSchema()
	return &vortex.Schema{
		Fields: append([]*vortex.Field{
			{Name: "clickId", Kind: vortex.StringKind, Mode: vortex.Required},
		}, base.Fields...),
		PrimaryKey:     []string{"clickId"},
		PartitionField: base.PartitionField,
		ClusterBy:      base.ClusterBy,
	}
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	db := vortex.Open(vortex.WithClusters("alpha", "beta"), vortex.WithSeed(1))
	const table = "web.clicks"
	if err := db.CreateTable(ctx, table, clicksSchema()); err != nil {
		log.Fatal(err)
	}
	// Background heartbeats + optimization, as in production (§5.5, §6.1).
	db.RunBackground(ctx, 100*time.Millisecond, table)

	// A continuously maintained per-page count view over the click
	// stream: the view is itself a primary-keyed Vortex table.
	view, err := db.CreateMaterializedView(ctx, `CREATE MATERIALIZED VIEW web.pageviews AS
SELECT url AS page, COUNT(*) AS views FROM web.clicks GROUP BY url`)
	if err != nil {
		log.Fatal(err)
	}

	// 8 producers, each with its own dedicated stream (§4.1: "tens of
	// thousands of clients ... each of them typically using their own
	// dedicated Stream").
	const producers = 8
	const eventsPerProducer = 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := workload.NewGen(int64(p), 200)
			s, err := db.Table(table).NewStream(ctx, vortex.Unbuffered)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < eventsPerProducer; i += 20 {
				raw := gen.EventRows(time.Now(), 20, time.Millisecond)
				rows := make([]vortex.Row, len(raw))
				for j, r := range raw {
					vals := append([]vortex.Value{
						vortex.StringValue(fmt.Sprintf("p%d-%04d", p, i+j)),
					}, r.Values...)
					row := vortex.NewRow(vals...)
					row.Change = vortex.Upsert
					rows[j] = row
				}
				if _, err := s.Append(ctx, rows, vortex.AtOffset(int64(i))); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}

	// A continuous dashboard query running WHILE ingestion is happening,
	// plus the incrementally refreshed view: each tick folds only the
	// delta since the last refresh into web.pageviews.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(150 * time.Millisecond)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-ticker.C:
		}
		res, err := db.Query(ctx, `
			SELECT eventType, COUNT(*) AS n
			FROM web.clicks
			GROUP BY eventType
			ORDER BY eventType`)
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		line := ""
		for _, r := range res.Rows() {
			line += fmt.Sprintf("  %s=%d", r[0].AsString(), r[1].AsInt64())
			total += r[1].AsInt64()
		}
		st, err := view.Refresh(ctx)
		if err != nil {
			log.Fatal(err)
		}
		top, err := db.Query(ctx, "SELECT page, views FROM web.pageviews ORDER BY views DESC LIMIT 1")
		if err != nil {
			log.Fatal(err)
		}
		hot := ""
		if rows := top.Rows(); len(rows) > 0 {
			hot = fmt.Sprintf("  hot page %s=%d", rows[0][0].AsString(), rows[0][1].AsInt64())
		}
		fmt.Printf("[live] total=%-6d%s  (view: +%d events)%s\n", total, line, st.Events, hot)
	}

	// Final checks: exact totals, the view against its defining query
	// recomputed at the applied snapshot, and a clustered point lookup.
	res, err := db.Query(ctx, "SELECT COUNT(*) FROM web.clicks")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal count: %s (expected %d)\n", res.Rows()[0][0], producers*eventsPerProducer)

	if _, err := view.Refresh(ctx); err != nil {
		log.Fatal(err)
	}
	want, err := db.QueryAt(ctx, view.Definition().SelectSQL, view.AppliedTS())
	if err != nil {
		log.Fatal(err)
	}
	got, err := db.Query(ctx, "SELECT page, views FROM web.pageviews ORDER BY views DESC")
	if err != nil {
		log.Fatal(err)
	}
	var viewTotal int64
	for _, r := range got.Rows() {
		viewTotal += r[1].AsInt64()
	}
	if len(got.Rows()) != len(want.Rows()) {
		log.Fatalf("view has %d pages, recompute has %d", len(got.Rows()), len(want.Rows()))
	}
	fmt.Printf("pageviews view: %d pages, %d views — matches recompute at snapshot %d\n",
		len(got.Rows()), viewTotal, view.AppliedTS())
	fmt.Println("top pages:")
	for i, r := range got.Rows() {
		if i == 3 {
			break
		}
		fmt.Printf("  %-24s %d views\n", r[0].AsString(), r[1].AsInt64())
	}

	res, err = db.Query(ctx, `
		SELECT deviceId, COUNT(*) AS n
		FROM web.clicks
		WHERE eventType = 'purchase'
		GROUP BY deviceId ORDER BY n DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top purchasing devices:")
	for _, r := range res.Rows() {
		fmt.Printf("  %-14s %d purchases\n", r[0].AsString(), r[1].AsInt64())
	}
	st, err := db.ClusteringRatio(ctx, table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering: ratio=%.2f baseline=%d delta=%d fragments\n", st.Ratio, st.BaselineFragments, st.DeltaFragments)
}
