// Clickstream: the paper's motivating log-analytics scenario (§1) —
// many resource-constrained producers push events straight to the
// warehouse (no local buffering, no batch loads, no extra copies), while
// continuous SQL queries watch the stream with sub-second freshness and
// the storage optimizer keeps layout query-friendly in the background.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"vortex"
	"vortex/internal/workload"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	db := vortex.Open(vortex.WithClusters("alpha", "beta"), vortex.WithSeed(1))
	const table = "web.clicks"
	if err := db.CreateTable(ctx, table, workload.EventsSchema()); err != nil {
		log.Fatal(err)
	}
	// Background heartbeats + optimization, as in production (§5.5, §6.1).
	db.RunBackground(ctx, 100*time.Millisecond, table)

	// 8 producers, each with its own dedicated stream (§4.1: "tens of
	// thousands of clients ... each of them typically using their own
	// dedicated Stream").
	const producers = 8
	const eventsPerProducer = 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := workload.NewGen(int64(p), 200)
			s, err := db.Table(table).NewStream(ctx, vortex.Unbuffered)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < eventsPerProducer; i += 20 {
				rows := gen.EventRows(time.Now(), 20, time.Millisecond)
				if _, err := s.Append(ctx, rows, vortex.AtOffset(int64(i))); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}

	// A continuous dashboard query running WHILE ingestion is happening.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(150 * time.Millisecond)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-ticker.C:
		}
		res, err := db.Query(ctx, `
			SELECT eventType, COUNT(*) AS n
			FROM web.clicks
			GROUP BY eventType
			ORDER BY eventType`)
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		line := ""
		for _, r := range res.Rows() {
			line += fmt.Sprintf("  %s=%d", r[0].AsString(), r[1].AsInt64())
			total += r[1].AsInt64()
		}
		fmt.Printf("[live] total=%-6d%s\n", total, line)
	}

	// Final checks: exact totals and a clustered point lookup.
	res, err := db.Query(ctx, "SELECT COUNT(*) FROM web.clicks")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal count: %s (expected %d)\n", res.Rows()[0][0], producers*eventsPerProducer)

	res, err = db.Query(ctx, `
		SELECT deviceId, COUNT(*) AS n
		FROM web.clicks
		WHERE eventType = 'purchase'
		GROUP BY deviceId ORDER BY n DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top purchasing devices:")
	for _, r := range res.Rows() {
		fmt.Printf("  %-14s %d purchases\n", r[0].AsString(), r[1].AsInt64())
	}
	st, err := db.ClusteringRatio(ctx, table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering: ratio=%.2f baseline=%d delta=%d fragments\n", st.Ratio, st.BaselineFragments, st.DeltaFragments)
}
