// Batch ETL: the unified batch/streaming story of §7.5 — parallel
// workers each write a PENDING stream and a coordinator commits them
// atomically (§4.2.4), then a Dataflow-style pipeline writes through the
// exactly-once BUFFERED-stream sink (§7.4) with zombie workers injected,
// and finally the result is read back through a parallel read session
// (the Storage-Read-API shape) with a reader crash injected mid-scan.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"vortex"
	"vortex/internal/dataflow"
	"vortex/internal/meta"
	"vortex/internal/workload"
)

func main() {
	ctx := context.Background()
	db := vortex.Open(vortex.WithClusters("alpha", "beta"), vortex.WithSeed(1))
	const table = "etl.sales"
	sc := workload.SalesSchema()
	if err := db.CreateTable(ctx, table, sc); err != nil {
		log.Fatal(err)
	}

	// ---- Part 1: atomic batch load via PENDING streams (§4.2.4) ----
	const workers = 4
	const rowsPerWorker = 250
	ids := make([]meta.StreamID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGen(int64(w), 300)
			s, err := db.Table(table).NewStream(ctx, vortex.Pending)
			if err != nil {
				log.Fatal(err)
			}
			rows := gen.SalesRows(0, rowsPerWorker)
			for lo := 0; lo < len(rows); lo += 50 {
				if _, err := s.Append(ctx, rows[lo:lo+50], vortex.AtOffset(int64(lo))); err != nil {
					log.Fatal(err)
				}
			}
			if _, err := s.Finalize(ctx); err != nil {
				log.Fatal(err)
			}
			ids[w] = s.Info().ID
		}(w)
	}
	wg.Wait()

	res, err := db.Query(ctx, "SELECT COUNT(*) FROM etl.sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before BatchCommit: COUNT(*) = %s (PENDING rows are invisible)\n", res.Rows()[0][0])

	commitTS, err := db.BatchCommit(ctx, table, ids)
	if err != nil {
		log.Fatal(err)
	}
	res, err = db.Query(ctx, "SELECT COUNT(*) FROM etl.sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after  BatchCommit: COUNT(*) = %s (all %d workers' rows atomically visible)\n",
		res.Rows()[0][0], workers)

	// Time travel to just before the commit still sees nothing.
	old, err := db.QueryAt(ctx, "SELECT COUNT(*) FROM etl.sales", commitTS-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot(commit-1ns): COUNT(*) = %s (atomicity in time)\n\n", old.Rows()[0][0])

	// ---- Part 2: exactly-once streaming sink (§7.4) ----
	gen := workload.NewGen(99, 300)
	streamRows := gen.SalesRows(1, 500)
	start := time.Now()
	sink, err := dataflow.WriteTableRows(ctx, db.Client(), table, streamRows, dataflow.SinkOptions{
		Partitions:          4,
		BundleSize:          25,
		DuplicateDeliveries: 2, // zombie workers on every bundle
		CrashAfterAppend:    3, // and crashes between append and commit
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataflow sink: %d bundles, %d zombie deliveries defeated, %d rows in %s\n",
		sink.BundlesProcessed, sink.ZombiesDefeated, sink.RowsWritten, time.Since(start).Round(time.Millisecond))

	res, err = db.Query(ctx, "SELECT COUNT(*) FROM etl.sales")
	if err != nil {
		log.Fatal(err)
	}
	want := int64(workers*rowsPerWorker + len(streamRows))
	got := res.Rows()[0][0].AsInt64()
	fmt.Printf("final COUNT(*) = %d (expected %d) — exactly-once end to end: %v\n\n", got, want, got == want)
	if got != want {
		log.Fatal("exactly-once violated")
	}

	// ---- Part 3: read it all back through a parallel read session ----
	// The session pins a snapshot, fans the table out into shard streams,
	// and checkpoints offsets — so a reader crash mid-scan replays exactly
	// the uncommitted suffix, and the union of all shards is the table.
	sess, err := db.OpenReadSession(ctx, table, vortex.ReadSessionOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close(ctx)
	var (
		mu      sync.Mutex
		total   int64
		crashed bool
	)
	var rwg sync.WaitGroup
	for i, sh := range sess.Shards() {
		rwg.Add(1)
		go func(i int, sh *vortex.ReadShard) {
			defer rwg.Done()
			batches := 0
			for {
				b, err := sh.Next(ctx)
				if err == io.EOF {
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				batches++
				if i == 0 && batches == 2 {
					mu.Lock()
					crashed = true
					mu.Unlock()
					// Simulated reader death before Commit: the batch is
					// forgotten and re-delivered to the successor below.
					sh.Crash()
					continue
				}
				mu.Lock()
				total += int64(b.NumRows())
				mu.Unlock()
				sh.Commit()
			}
		}(i, sh)
	}
	rwg.Wait()
	st := sess.Stats()
	fmt.Printf("read session: %d shards, %d batches, crash injected=%v, resumes=%d\n",
		st.Shards, st.Batches, crashed, st.Resumes)
	fmt.Printf("session delivered %d rows (expected %d) — shard union complete: %v\n",
		total, want, total == want)
	if total != want {
		log.Fatal("read-session union incomplete")
	}
}
