// Quickstart: create a table, stream rows into it with read-after-write
// consistency, and query it with SQL — the end-to-end loop the paper's
// abstract promises ("petabyte scale data ingestion with sub-second data
// freshness and query latency"), scaled to one process.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vortex"
)

func main() {
	ctx := context.Background()
	db := vortex.Open(vortex.WithClusters("alpha", "beta"), vortex.WithSeed(1))

	// A partitioned, clustered table (cf. the paper's Listing 1).
	eventsSchema := &vortex.Schema{
		Fields: []*vortex.Field{
			{Name: "ts", Kind: vortex.TimestampKind, Mode: vortex.Required},
			{Name: "device", Kind: vortex.StringKind, Mode: vortex.Required},
			{Name: "reading", Kind: vortex.Float64Kind, Mode: vortex.Nullable},
		},
		PartitionField: "ts",
		ClusterBy:      []string{"device"},
	}
	if err := db.CreateTable(ctx, "iot.events", eventsSchema); err != nil {
		log.Fatal(err)
	}

	// Stream rows through an UNBUFFERED stream: once Append returns, the
	// rows are durably committed and visible to queries (§4.2.1).
	stream, err := db.Table("iot.events").NewStream(ctx, vortex.Unbuffered)
	if err != nil {
		log.Fatal(err)
	}
	base := time.Now().UTC()
	for i := 0; i < 100; i++ {
		row := vortex.NewRow(
			vortex.TimestampValue(base.Add(time.Duration(i)*time.Second)),
			vortex.StringValue(fmt.Sprintf("sensor-%d", i%7)),
			vortex.Float64Value(20+float64(i%10)/2),
		)
		// Offset pinning makes retries exactly-once (§4.2.2).
		if _, err := stream.Append(ctx, []vortex.Row{row}, vortex.AtOffset(int64(i))); err != nil {
			log.Fatal(err)
		}
	}

	// Sub-second freshness: the rows are immediately queryable.
	start := time.Now()
	res, err := db.Query(ctx, `
		SELECT device, COUNT(*) AS n, AVG(reading) AS avg_reading
		FROM iot.events
		GROUP BY device
		ORDER BY device`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query returned %d groups in %s (freshness: read-after-write)\n\n", len(res.Rows()), time.Since(start).Round(time.Microsecond))
	fmt.Printf("%-12s %4s %12s\n", "device", "n", "avg_reading")
	for _, r := range res.Rows() {
		fmt.Printf("%-12s %4d %12.2f\n", r[0].AsString(), r[1].AsInt64(), r[2].AsFloat64())
	}

	// Run storage optimization (WOS→ROS, §6.1) and query again: same
	// answer, now from columnar storage.
	db.Heartbeat(ctx)
	if _, err := stream.Finalize(ctx); err != nil {
		log.Fatal(err)
	}
	db.Heartbeat(ctx)
	opt, err := db.Optimize(ctx, "iot.events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer: converted %d WOS fragments into %d ROS files (%d rows)\n",
		opt.FragmentsConverted, opt.FilesWritten, opt.RowsConverted)

	res2, err := db.Query(ctx, "SELECT COUNT(*) FROM iot.events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-conversion COUNT(*) = %s (exactly-once across the handoff)\n", res2.Rows()[0][0])
}
